// Cluster-scale sweep: byte miss ratio and back-to-origin (BTO) bandwidth
// of the consistent-hash cluster at 1/2/4/8 nodes, with and without
// cooperative hot-key replication, under three scenarios:
//
//   * baseline     — the unstressed CDN-T-like trace;
//   * flash        — the flash-crowd stressor scenario (a handful of
//                    objects absorb half the request stream for a while);
//   * flash-churn  — the flash trace plus deterministic membership churn
//                    (a node joins at 40% of the trace and node 0 leaves
//                    at 70%, exercising warm-transfer rebalancing mid-run).
//
// Spreading hot keys over k owners happens in BOTH replication arms (a
// flash crowd must be load-spread either way); the arms differ only in
// cooperative peer fill, so their hit/miss sequences are identical and the
// origin-byte comparison isolates exactly the replication effect.
//
// Gates enforced before the report is written (exit 1 on violation):
//   * bitwise rerun determinism — every configuration runs twice and must
//     be deterministic_equal in both SimResult (window series included)
//     and ClusterTotals;
//   * single-node anchor — the 1-node cluster must reproduce the bare
//     unsharded SCIP cache exactly (requests/hits/bytes/warm counters and
//     the full window-miss-ratio series) on the churn-free scenarios;
//   * replication BTO gate — under flash at >= 4 nodes, enabling peer
//     fill must strictly reduce origin bytes;
//   * the emitted document must pass obs::validate_bench_report.
//
// Output: BENCH_cluster.json (schema "cdn-bench-report") under
// $CDN_BENCH_JSON_DIR (default "."), one row per configuration.
// Exit codes: 0 ok, 1 gate or validation failure, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <vector>

#include "cluster/cluster_cache.hpp"
#include "core/registry.hpp"
#include "obs/bench_report.hpp"
#include "sim/simulator.hpp"
#include "trace/stressors/scenarios.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace cdn::cluster {
namespace {

constexpr const char* kPolicy = "SCIP";
constexpr std::size_t kNodeCounts[] = {1, 2, 4, 8};

/// Cache size as a fraction of each scenario's working set — the same
/// "128 GB of CDN-T" operating point bench_stress pins (11.7%), here the
/// TOTAL across all nodes, so adding nodes splits a fixed byte budget.
constexpr double kCapacityFrac = 0.117;

/// Hot-key detector operating point. At smoke scale the flash scenario's
/// crowd objects see hundreds of requests per window, so a threshold of 32
/// in a 4096-request window classifies the crowd and nothing else.
constexpr std::uint32_t kHotThreshold = 32;
constexpr std::uint64_t kHotWindow = 4096;
constexpr std::uint64_t kSeed = 1;

struct Scenario {
  std::string name;
  Trace trace;
  bool churn = false;  ///< has a membership schedule (no 1-node anchor)
};

struct RunOut {
  SimResult sim;
  ClusterTotals totals;
};

std::vector<MembershipEvent> churn_schedule(std::size_t n_requests) {
  const auto n = static_cast<std::uint64_t>(n_requests);
  return {{n * 4 / 10, MembershipEvent::Kind::kJoin, 0},
          {n * 7 / 10, MembershipEvent::Kind::kLeave, 0}};
}

RunOut run_one(const Scenario& sc, std::uint64_t capacity, std::size_t nodes,
               bool replicate) {
  ClusterCacheConfig cfg;
  cfg.policy = kPolicy;
  cfg.capacity_bytes = capacity;
  cfg.nodes = nodes;
  cfg.replicas = 2;
  cfg.replicate_hot = replicate;
  cfg.hot_threshold = kHotThreshold;
  cfg.hot_window = kHotWindow;
  cfg.seed = kSeed;
  if (sc.churn) cfg.schedule = churn_schedule(sc.trace.requests.size());
  ClusterCache cluster(cfg);
  SimOptions opts;
  opts.window = 10'000;
  opts.warmup_frac = 0.2;
  RunOut out;
  out.sim = simulate(cluster, sc.trace, opts);
  out.totals = cluster.totals();
  return out;
}

bool same_counters(const SimResult& a, const SimResult& b) {
  return a.requests == b.requests && a.hits == b.hits &&
         a.bytes_total == b.bytes_total && a.bytes_hit == b.bytes_hit &&
         a.warm_requests == b.warm_requests && a.warm_hits == b.warm_hits &&
         a.warm_bytes_total == b.warm_bytes_total &&
         a.warm_bytes_hit == b.warm_bytes_hit &&
         a.window_miss_ratios == b.window_miss_ratios;
}

struct Args {
  bool smoke = false;
  double scale = 0.25;      ///< base-trace request-count scale
  std::size_t threads = 8;  ///< configurations simulated concurrently
};

int usage() {
  std::fprintf(stderr,
               "usage: bench_cluster [--smoke] [--scale F] [--threads N]\n");
  return 2;
}

int run(const Args& args) {
  obs::BenchReport report("cluster");

  // --- Scenario traces (flash-churn replays the flash trace under a
  // membership schedule; renamed so report rows stay distinguishable).
  std::vector<Scenario> scenarios;
  scenarios.push_back(
      {"baseline",
       stress::make_stressed_trace(stress::make_stress_scenario("baseline",
                                                                args.scale)),
       false});
  scenarios.push_back(
      {"flash",
       stress::make_stressed_trace(stress::make_stress_scenario("flash",
                                                                args.scale)),
       false});
  scenarios.push_back({"flash-churn", scenarios.back().trace, true});
  scenarios.back().trace.name = "flash-churn";

  std::vector<std::uint64_t> capacities;
  for (const Scenario& sc : scenarios) {
    capacities.push_back(static_cast<std::uint64_t>(
        kCapacityFrac * static_cast<double>(sc.trace.working_set_bytes())));
  }

  struct Config {
    std::size_t scenario;
    std::size_t nodes;
    bool replicate;
  };
  std::vector<Config> grid;
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    for (const std::size_t nodes : kNodeCounts) {
      for (const bool replicate : {false, true}) {
        grid.push_back(Config{s, nodes, replicate});
      }
    }
  }

  std::printf("sweeping %zu scenarios x %zu node counts x 2 replication "
              "arms, twice (scale %.3g, %zu threads)...\n",
              scenarios.size(), std::size(kNodeCounts), args.scale,
              args.threads);
  std::fflush(stdout);

  const auto sweep_once = [&] {
    ThreadPool pool(args.threads);
    std::vector<std::future<RunOut>> futures;
    futures.reserve(grid.size());
    for (const Config& c : grid) {
      const Scenario* sc = &scenarios[c.scenario];
      const std::uint64_t cap = capacities[c.scenario];
      futures.push_back(pool.submit([sc, cap, c] {
        return run_one(*sc, cap, c.nodes, c.replicate);
      }));
    }
    std::vector<RunOut> outs;
    outs.reserve(futures.size());
    for (auto& f : futures) outs.push_back(f.get());
    return outs;
  };

  // --- Determinism gate: the entire sweep, twice, bitwise. ----------------
  const std::vector<RunOut> results = sweep_once();
  const std::vector<RunOut> rerun = sweep_once();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (!deterministic_equal(results[i].sim, rerun[i].sim) ||
        results[i].sim.window_miss_ratios != rerun[i].sim.window_miss_ratios ||
        !deterministic_equal(results[i].totals, rerun[i].totals)) {
      std::fprintf(stderr,
                   "FAIL: rerun of config %zu (%s, %zu nodes, replication "
                   "%s) is not bitwise identical\n",
                   i, scenarios[grid[i].scenario].name.c_str(), grid[i].nodes,
                   grid[i].replicate ? "on" : "off");
      return 1;
    }
  }

  const auto result_at = [&](std::size_t scenario, std::size_t nodes,
                             bool replicate) -> const RunOut& {
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (grid[i].scenario == scenario && grid[i].nodes == nodes &&
          grid[i].replicate == replicate) {
        return results[i];
      }
    }
    std::abort();  // unreachable: the grid enumerates every combination
  };

  // --- Single-node anchor: cluster(1 node) == bare SCIP, both arms. ------
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    if (scenarios[s].churn) continue;
    const CachePtr plain = make_cache(kPolicy, capacities[s], kSeed);
    SimOptions opts;
    opts.window = 10'000;
    opts.warmup_frac = 0.2;
    const SimResult plain_res = simulate(*plain, scenarios[s].trace, opts);
    for (const bool replicate : {false, true}) {
      const RunOut& one = result_at(s, 1, replicate);
      if (!same_counters(one.sim, plain_res)) {
        std::fprintf(stderr,
                     "FAIL: 1-node cluster diverges from unsharded %s under "
                     "'%s' (replication %s)\n",
                     kPolicy, scenarios[s].name.c_str(),
                     replicate ? "on" : "off");
        return 1;
      }
    }
  }

  // --- Replication BTO gate + report rows + summary table. ----------------
  Table table({"scenario", "nodes", "byte miss", "origin GB off",
               "origin GB on", "peer fills on"});
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    for (const std::size_t nodes : kNodeCounts) {
      const RunOut& off = result_at(s, nodes, false);
      const RunOut& on = result_at(s, nodes, true);
      table.add_row({scenarios[s].name, std::to_string(nodes),
                     Table::pct(on.sim.byte_miss_ratio()),
                     Table::fmt(static_cast<double>(off.totals.origin_bytes) /
                                1e9),
                     Table::fmt(static_cast<double>(on.totals.origin_bytes) /
                                1e9),
                     std::to_string(on.totals.peer_fills)});
      for (const bool replicate : {false, true}) {
        const RunOut& r = result_at(s, nodes, replicate);
        obs::json::Value row = sim_result_row(r.sim);
        row.set("scenario", scenarios[s].name);
        row.set("nodes", static_cast<std::uint64_t>(nodes));
        row.set("replication", static_cast<std::uint64_t>(replicate ? 1 : 0));
        row.set("capacity_bytes", capacities[s]);
        row.set("scale", args.scale);
        row.set("origin_fetches", r.totals.origin_fetches);
        row.set("origin_bytes", r.totals.origin_bytes);
        row.set("peer_fills", r.totals.peer_fills);
        row.set("peer_fill_bytes", r.totals.peer_fill_bytes);
        row.set("hot_spread_requests", r.totals.hot_spread_requests);
        row.set("migrated_keys", r.totals.migrated_keys);
        row.set("migrated_bytes", r.totals.migrated_bytes);
        row.set("bto_bytes_per_request",
                r.totals.requests
                    ? static_cast<double>(r.totals.origin_bytes) /
                          static_cast<double>(r.totals.requests)
                    : 0.0);
        report.add_row(std::move(row));
      }
    }
  }
  std::printf("\n== Cluster sweep (%s, cap %.1f%% WSS total) ==\n%s",
              kPolicy, 100.0 * kCapacityFrac, table.str().c_str());

  bool bto_ok = true;
  const std::size_t flash_idx = 1;
  for (const std::size_t nodes : kNodeCounts) {
    if (nodes < 4) continue;
    const std::uint64_t off =
        result_at(flash_idx, nodes, false).totals.origin_bytes;
    const std::uint64_t on =
        result_at(flash_idx, nodes, true).totals.origin_bytes;
    if (on >= off) {
      std::fprintf(stderr,
                   "FAIL: hot-key replication does not reduce origin bytes "
                   "under flash at %zu nodes (on %llu >= off %llu)\n",
                   nodes, static_cast<unsigned long long>(on),
                   static_cast<unsigned long long>(off));
      bto_ok = false;
    }
  }
  if (!bto_ok) return 1;

  // --- Validate + write. --------------------------------------------------
  const std::string violation = obs::validate_bench_report(report.document());
  if (!violation.empty()) {
    std::fprintf(stderr, "FAIL: BENCH_cluster.json schema: %s\n",
                 violation.c_str());
    return 1;
  }
  const char* dir = std::getenv("CDN_BENCH_JSON_DIR");
  if (!report.write(dir ? dir : ".")) {
    std::fprintf(stderr, "FAIL: could not write %s\n",
                 report.file_name().c_str());
    return 1;
  }
  std::printf("\nwrote %s (%zu rows, schema valid, rerun-deterministic, "
              "1-node anchor exact, replication reduces flash BTO at >=4 "
              "nodes)\n",
              report.file_name().c_str(), report.rows());
  return 0;
}

}  // namespace
}  // namespace cdn::cluster

int main(int argc, char** argv) {
  cdn::cluster::Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg == "--scale") {
      const char* v = next();
      if (!v) return cdn::cluster::usage();
      args.scale = std::atof(v);
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return cdn::cluster::usage();
      args.threads = static_cast<std::size_t>(std::atoi(v));
    } else {
      return cdn::cluster::usage();
    }
  }
  if (args.smoke) {
    // CI-sized: ~50k requests per scenario, the full gate set still runs.
    args.scale = 0.05;
  }
  if (args.scale <= 0.0 || args.threads == 0) {
    return cdn::cluster::usage();
  }
  return cdn::cluster::run(args);
}

// Shared plumbing for the figure-reproduction benchmarks: cached synthetic
// traces (generated once per binary), the paper's cache-size grid expressed
// as fractions of each trace's measured working-set size, and a pretty
// result-row helper.
//
// Every binary reproduces one table/figure of the paper and prints the same
// rows/series the paper reports; EXPERIMENTS.md records paper-vs-measured.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/bench_report.hpp"
#include "sim/simulator.hpp"
#include "trace/generator.hpp"
#include "trace/oracle.hpp"
#include "trace/stats.hpp"
#include "util/table.hpp"

namespace cdn::bench {

/// Scale of the synthetic traces relative to the defaults (~1 M requests).
inline constexpr double kTraceScale = 0.5;

/// The three annotated workloads, generated once and cached.
inline const std::vector<Trace>& traces() {
  static const auto* ts = [] {
    auto* v = new std::vector<Trace>;
    for (const auto& spec :
         {cdn_t_like(kTraceScale), cdn_w_like(kTraceScale),
          cdn_a_like(kTraceScale)}) {
      Trace t = generate_trace(spec);
      annotate_next_access(t);
      v->push_back(std::move(t));
    }
    return v;
  }();
  return *ts;
}

inline const Trace& trace_t() { return traces()[0]; }
inline const Trace& trace_w() { return traces()[1]; }
inline const Trace& trace_a() { return traces()[2]; }

/// Cache size as a fraction of the trace's working set (the paper sizes
/// caches relative to the WSS; Fig. 8's 64/128/256 GB of CDN-T's 1097 GB
/// are about 5.8 / 11.7 / 23.3 %).
inline std::uint64_t cap_frac(const Trace& t, double frac) {
  return static_cast<std::uint64_t>(
      frac * static_cast<double>(t.working_set_bytes()));
}

inline constexpr double kFig8SmallFrac = 0.058;   // "64 GB"
inline constexpr double kFig8MediumFrac = 0.117;  // "128 GB"
inline constexpr double kFig8LargeFrac = 0.233;   // "256 GB"

/// Prints a titled table block so bench output reads like the paper.
inline void print_block(const std::string& title, const Table& table) {
  std::printf("\n== %s ==\n%s", title.c_str(), table.str().c_str());
  std::fflush(stdout);
}

/// Machine-readable perf-trajectory hook: every bench binary owns one
/// BenchJson, feeds it each SimResult it measures, and gets a
/// BENCH_<name>.json (schema "cdn-bench-report", validated by test_obs)
/// written at scope exit. The destination directory comes from
/// $CDN_BENCH_JSON_DIR (default: the working directory); setting it to the
/// repo root keeps the BENCH_*.json trajectory files where the ROADMAP
/// expects them.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name)
      : report_(std::move(bench_name)) {}

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  void add(const SimResult& r) { report_.add_row(sim_result_row(r)); }
  void add_all(const std::vector<SimResult>& rs) {
    for (const auto& r : rs) add(r);
  }

  ~BenchJson() {
    if (report_.rows() == 0) return;
    const char* dir = std::getenv("CDN_BENCH_JSON_DIR");
    if (!report_.write(dir ? dir : ".")) {
      std::fprintf(stderr, "warning: could not write %s\n",
                   report_.file_name().c_str());
    } else {
      std::printf("wrote %s (%zu rows)\n", report_.file_name().c_str(),
                  report_.rows());
    }
  }

 private:
  obs::BenchReport report_;
};

}  // namespace cdn::bench

// Figure 4: decision accuracy of LinReg, LogReg, SVM, NN, GBM and MAB when
// classifying ZROs, P-ZROs, and both, per workload.
//
// Methodology (mirrors §2.3): events are labeled by the LRU replay at 5 %
// of WSS; batch models train on the first half of the event stream and are
// evaluated frozen on the second half; the MAB runs *online* over the
// second half (decision first, label feedback afterwards), like SCIP in
// deployment. Batch training is subsampled to 40 K rows; the NN uses 256
// hidden neurons instead of the paper's 1024 (same family, 4x faster on
// the laptop-scale budget; width is not the bottleneck at 6 features).
//
// Expected shape: every model identifies ZROs better than P-ZROs; the joint
// task is the hardest; MAB is the most robust on the joint task.
#include "bench_common.hpp"

#include <memory>

#include "analysis/feature_builder.hpp"
#include "analysis/mab_classifier.hpp"
#include "analysis/residency.hpp"
#include "ml/gbm.hpp"
#include "ml/linear.hpp"
#include "ml/metrics.hpp"
#include "ml/mlp.hpp"
#include "ml/svm.hpp"

namespace cdn::bench {
namespace {

using analysis::LabelTask;

ml::Dataset subsample(const ml::Dataset& ds, std::size_t max_rows,
                      Rng& rng) {
  if (ds.rows() <= max_rows) return ds;
  ml::Dataset out(ds.features());
  const double keep =
      static_cast<double>(max_rows) / static_cast<double>(ds.rows());
  for (std::size_t i = 0; i < ds.rows(); ++i) {
    if (rng.chance(keep)) {
      out.add_row(std::span<const float>(ds.row(i), ds.features()),
                  ds.label(i));
    }
  }
  return out;
}

void BM_Fig4(benchmark::State& state) {
  for (auto _ : state) {
    for (const Trace& t : traces()) {
      const std::uint64_t cap = cap_frac(t, 0.05);
      const auto an = analysis::analyze_zro(t, cap);
      Table table({"model", "ZRO acc", "P-ZRO acc", "both acc"});
      std::vector<std::vector<std::string>> rows(6);

      const char* task_names[3] = {"ZRO", "P-ZRO", "both"};
      (void)task_names;
      std::vector<std::vector<double>> acc(6, std::vector<double>(3));

      for (int task_i = 0; task_i < 3; ++task_i) {
        const auto task = static_cast<LabelTask>(task_i);
        std::vector<std::uint64_t> ids;
        const auto ds = analysis::build_event_dataset(t, an, task, &ids);
        auto [train_full, test] = ds.split(0.5);
        Rng rng(1234 + task_i);
        auto train = subsample(train_full, 40'000, rng);
        train.shuffle(rng);

        std::vector<std::unique_ptr<ml::BinaryClassifier>> models;
        models.push_back(std::make_unique<ml::LinReg>());
        models.push_back(std::make_unique<ml::LogReg>());
        models.push_back(std::make_unique<ml::LinearSvm>());
        models.push_back(std::make_unique<ml::Mlp>(
            ml::MlpParams{.hidden = 256, .epochs = 3}));
        models.push_back(std::make_unique<ml::GbmClassifier>());
        for (std::size_t m = 0; m < models.size(); ++m) {
          Rng fit_rng(99 + m);
          models[m]->fit(train, fit_rng);
          acc[m][static_cast<std::size_t>(task_i)] =
              ml::evaluate(*models[m], test).accuracy;
        }
        // Online MAB over the test half (ids aligned with ds rows).
        std::vector<std::uint64_t> test_ids(
            ids.begin() + static_cast<std::ptrdiff_t>(train_full.rows()),
            ids.end());
        const auto scores = analysis::run_mab_classifier(test, test_ids);
        acc[5][static_cast<std::size_t>(task_i)] =
            ml::report_from_scores(scores, test.labels()).accuracy;
      }
      const char* names[6] = {"LinReg", "LogReg", "SVM", "NN", "GBM", "MAB"};
      for (int m = 0; m < 6; ++m) {
        table.add_row({names[m], Table::pct(acc[static_cast<std::size_t>(m)][0]),
                       Table::pct(acc[static_cast<std::size_t>(m)][1]),
                       Table::pct(acc[static_cast<std::size_t>(m)][2])});
      }
      print_block("Fig. 4 (" + t.name + ")", table);
    }
  }
}
BENCHMARK(BM_Fig4)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace cdn::bench

BENCHMARK_MAIN();

// Figure 10: miss ratios of Belady, SCIP and the replacement-algorithm
// baselines (LRU, LRU-2, S4LRU, SS-LRU, GDSF, LHD, CACHEUS, LRB, GL-Cache)
// on the three workloads at the default cache size.
//
// Expected shape: Belady floor; SCIP competitive with the learned policies
// at a fraction of their cost (the cost side is Fig. 11).
#include "bench_common.hpp"

#include "core/registry.hpp"
#include "sim/sweep.hpp"

namespace cdn::bench {
namespace {

void BM_Fig10(benchmark::State& state) {
  BenchJson bench_json("fig10_replacement");
  for (auto _ : state) {
    std::vector<std::string> policies{"Belady"};
    for (const auto& n : replacement_policy_names()) policies.push_back(n);

    Table table({"policy", "CDN-T obj", "CDN-T byte", "CDN-W obj",
                 "CDN-W byte", "CDN-A obj", "CDN-A byte"});
    std::vector<SweepJob> jobs;
    for (const auto& name : policies) {
      for (const Trace& t : traces()) {
        const std::uint64_t cap = cap_frac(t, kFig8SmallFrac);
        jobs.push_back(SweepJob{
            [name, cap] { return make_cache(name, cap); }, &t, SimOptions{}});
      }
    }
    const auto res = run_sweep(jobs);
    bench_json.add_all(res);
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const auto& rt = res[p * 3 + 0];
      const auto& rw = res[p * 3 + 1];
      const auto& ra = res[p * 3 + 2];
      table.add_row({policies[p], Table::pct(rt.object_miss_ratio()),
                     Table::pct(rt.byte_miss_ratio()),
                     Table::pct(rw.object_miss_ratio()),
                     Table::pct(rw.byte_miss_ratio()),
                     Table::pct(ra.object_miss_ratio()),
                     Table::pct(ra.byte_miss_ratio())});
    }
    print_block("Fig. 10: replacement algorithms (cache = 5.8% of WSS)",
                table);
  }
}
BENCHMARK(BM_Fig10)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace cdn::bench

BENCHMARK_MAIN();

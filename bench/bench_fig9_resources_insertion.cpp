// Figure 9: resource consumption of the insertion policies on CDN-T —
// CPU cost, peak (metadata) memory, and transactions per second.
//
// The paper measured process CPU% / GB / TPS on a 56-core testbed; the
// hardware-independent equivalents we report are CPU seconds per million
// requests (thread CPU time), the policy's peak metadata footprint (exact,
// from each policy's own accounting), and requests per wall-clock second.
// Expected shape: SCIP sits with the cheap heuristics (LIP/DIP/PIPP/SHiP/
// ASC-IP), clearly cheaper than the learned baselines; its memory is LIP
// plus the two history lists + monitors.
#include "bench_common.hpp"

#include "core/registry.hpp"
#include "sim/simulator.hpp"

namespace cdn::bench {
namespace {

void BM_Fig9(benchmark::State& state) {
  BenchJson bench_json("fig9_resources_insertion");
  for (auto _ : state) {
    const Trace& t = trace_t();
    const std::uint64_t cap = cap_frac(t, kFig8SmallFrac);
    std::vector<std::string> policies{"LRU"};
    for (const auto& n : insertion_policy_names()) policies.push_back(n);

    Table table({"policy", "obj miss", "cpu s/Mreq", "peak metadata",
                 "TPS (Mreq/s)"});
    // Resource timing must be serial: one policy at a time, one thread.
    for (const auto& name : policies) {
      auto cache = make_cache(name, cap);
      const auto res = simulate(*cache, t);
      bench_json.add(res);
      const double mreq = static_cast<double>(res.requests) / 1e6;
      table.add_row(
          {name, Table::pct(res.object_miss_ratio()),
           Table::fmt(res.cpu_seconds / mreq, 3),
           Table::bytes(static_cast<double>(res.metadata_peak_bytes)),
           Table::fmt(res.tps() / 1e6, 2)});
      if (name == "SCIP") {
        state.counters["scip_tps_Mreq"] = res.tps() / 1e6;
        state.counters["scip_meta_MB"] =
            static_cast<double>(res.metadata_peak_bytes) / 1e6;
      }
    }
    print_block("Fig. 9: insertion-policy resources (CDN-T)", table);
  }
}
BENCHMARK(BM_Fig9)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace cdn::bench

BENCHMARK_MAIN();

// Size-aware frontier × online orchestration gate.
//
// The full CDN-T/W/A × {baseline, drift, flash, churn, sizemix, storm}
// grid (18 traces), each replayed under six fixed policies (LRU, GDSF,
// SCIP, S4LRU, TinyLFU-admitted LRU, SB-LRU), the OrchestratorCache over
// exactly that expert pool, and both offline bounds (object-Belady and the
// size-aware ByteOracle from src/analysis) — so every cell reports the
// object- AND byte-optimal frontier next to what the policies achieve.
// The scan scenario is omitted: its one-hit sweeps make the byte-optimal
// bound degenerate (everything bypasses) and it is already gated by
// bench_stress.
//
// Gates enforced before the report is written (exit 1 on violation):
//   * bitwise rerun determinism — the whole sweep runs twice and every row
//     (bounds and orchestrator included) must be deterministic_equal;
//   * epsilon dominance — in every (base, scenario) cell the orchestrator's
//     warm BYTE miss ratio must be within --epsilon (default 0.01,
//     absolute) of the best fixed policy's: tracking the per-cell winner is
//     the orchestrator's entire job, so trailing it anywhere is a bug;
//   * the emitted document must pass obs::validate_bench_report.
//
// Output: BENCH_orchestrator.json under $CDN_BENCH_JSON_DIR (default "."),
// one row per (policy-or-bound, base, scenario); bound rows carry
// "bound": true. Exit codes: 0 ok, 1 gate/validation failure, 2 usage.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "analysis/byte_oracle.hpp"
#include "core/registry.hpp"
#include "obs/bench_report.hpp"
#include "policies/replacement/belady.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "trace/oracle.hpp"
#include "trace/stressors/scenarios.hpp"
#include "util/table.hpp"

namespace cdn::orch_bench {
namespace {

constexpr const char* kFixedPolicies[] = {"LRU",   "GDSF",    "SCIP",
                                          "S4LRU", "TinyLFU", "SB-LRU"};
constexpr const char* kBases[] = {"cdn-t", "cdn-w", "cdn-a"};
constexpr const char* kScenarios[] = {"baseline", "drift",   "flash",
                                      "churn",    "sizemix", "storm"};
constexpr std::size_t kFixedCount = std::size(kFixedPolicies);
/// Per-trace row order: fixed policies, then the orchestrator, then the
/// two bound rows.
constexpr std::size_t kRowsPerTrace = kFixedCount + 3;

/// Cache size as a fraction of each trace's working set (the paper's
/// Fig. 8 medium point, same as bench_stress).
constexpr double kCapacityFrac = 0.117;

constexpr double kDefaultEpsilon = 0.01;

struct Args {
  bool smoke = false;
  double scale = 0.25;
  std::size_t threads = 8;
  double epsilon = kDefaultEpsilon;
};

int usage() {
  std::fprintf(stderr,
               "usage: bench_orchestrator [--smoke] [--scale F] "
               "[--threads N] [--epsilon F]\n");
  return 2;
}

int run(const Args& args) {
  obs::BenchReport report("orchestrator");

  // --- Build every (base, scenario) trace up front, annotated for the
  // oracle bound rows (annotation must follow the last stressor rewrite;
  // none of the online policies read Request::next).
  std::vector<Trace> traces;
  std::vector<std::uint64_t> capacities;
  std::vector<std::string> cell_names;
  traces.reserve(std::size(kBases) * std::size(kScenarios));
  for (const char* base : kBases) {
    for (const char* scenario : kScenarios) {
      stress::StressScenario sc =
          stress::make_stress_scenario(scenario, args.scale, base);
      Trace t = stress::make_stressed_trace(sc);
      t.name = std::string(base) + "/" + scenario;
      annotate_next_access(t);
      cell_names.push_back(t.name);
      capacities.push_back(static_cast<std::uint64_t>(
          kCapacityFrac * static_cast<double>(t.working_set_bytes())));
      traces.push_back(std::move(t));
    }
  }

  SimOptions opts;
  opts.window = 10'000;
  // Warm fraction 0.5, not bench_stress's 0.2: the orchestrator is an
  // ONLINE learner, and on these half-length smoke traces the first 50%
  // contains its entire first observation of each scenario's regime
  // structure (shadow warm-up, the first scored windows, and — on
  // scenarios whose regime shifts mid-trace — the first switch plus
  // hand-off). Scoring that learning transient against fixed policies that
  // have nothing to learn would gate the bench on cold-start cost rather
  // than steady-state tracking, which is the property the epsilon gate is
  // about. Applied identically to every row (fixed policies and bounds
  // included), so no row gains an accounting advantage.
  opts.warmup_frac = 0.5;

  std::vector<SweepJob> jobs;
  for (std::size_t s = 0; s < traces.size(); ++s) {
    const std::uint64_t cap = capacities[s];
    for (const char* policy : kFixedPolicies) {
      jobs.push_back(SweepJob{
          [policy, cap] { return make_cache(policy, cap); }, &traces[s],
          opts});
    }
    jobs.push_back(SweepJob{
        [cap] { return make_cache("Orchestrator", cap); }, &traces[s], opts});
    jobs.push_back(SweepJob{
        [cap]() -> CachePtr { return std::make_unique<BeladyCache>(cap); },
        &traces[s], opts});
    jobs.push_back(SweepJob{
        [cap]() -> CachePtr {
          return std::make_unique<analysis::ByteOracleCache>(cap);
        },
        &traces[s], opts});
  }

  std::printf("sweeping %zu rows x %zu cells (%zu jobs, scale %.3g, "
              "%zu threads)...\n",
              kRowsPerTrace, traces.size(), jobs.size(), args.scale,
              args.threads);
  std::fflush(stdout);

  // --- Determinism gate: the entire sweep, twice, bitwise. --------------
  const std::vector<SimResult> results = run_sweep(jobs, args.threads);
  const std::vector<SimResult> rerun = run_sweep(jobs, args.threads);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!deterministic_equal(results[i], rerun[i]) ||
        results[i].window_miss_ratios != rerun[i].window_miss_ratios) {
      std::fprintf(stderr,
                   "FAIL: rerun of job %zu (%s on %s) is not bitwise "
                   "identical\n",
                   i, results[i].policy.c_str(), results[i].trace.c_str());
      return 1;
    }
  }

  const auto result_at = [&](std::size_t cell,
                             std::size_t row) -> const SimResult& {
    return results[cell * kRowsPerTrace + row];
  };

  // --- Per-base tables of warm byte miss ratios. ------------------------
  for (std::size_t b = 0; b < std::size(kBases); ++b) {
    std::vector<std::string> header = {"policy"};
    for (const char* scenario : kScenarios) header.emplace_back(scenario);
    Table table(header);
    for (std::size_t r = 0; r < kRowsPerTrace; ++r) {
      const std::size_t cell0 = b * std::size(kScenarios);
      std::vector<std::string> row = {result_at(cell0, r).policy};
      for (std::size_t s = 0; s < std::size(kScenarios); ++s) {
        row.push_back(
            Table::pct(result_at(cell0 + s, r).warm_byte_miss_ratio()));
      }
      table.add_row(row);
    }
    std::printf("\n== %s: warm byte miss ratio (cap %.1f%% WSS) ==\n%s",
                kBases[b], 100.0 * kCapacityFrac, table.str().c_str());
  }

  // --- Report rows. -----------------------------------------------------
  for (std::size_t c = 0; c < traces.size(); ++c) {
    for (std::size_t r = 0; r < kRowsPerTrace; ++r) {
      const SimResult& res = result_at(c, r);
      obs::json::Value row = sim_result_row(res);
      row.set("base", std::string(kBases[c / std::size(kScenarios)]));
      row.set("scenario", std::string(kScenarios[c % std::size(kScenarios)]));
      row.set("capacity_bytes", capacities[c]);
      row.set("capacity_frac", kCapacityFrac);
      row.set("scale", args.scale);
      row.set("bound", res.policy == "Belady" || res.policy == "ByteOracle");
      report.add_row(std::move(row));
    }
  }

  // --- Epsilon-dominance gate. ------------------------------------------
  bool eps_ok = true;
  for (std::size_t c = 0; c < traces.size(); ++c) {
    double best_fixed = 1.0;
    std::size_t best_idx = 0;
    for (std::size_t p = 0; p < kFixedCount; ++p) {
      const double m = result_at(c, p).warm_byte_miss_ratio();
      if (m < best_fixed) {
        best_fixed = m;
        best_idx = p;
      }
    }
    const double orch = result_at(c, kFixedCount).warm_byte_miss_ratio();
    if (orch > best_fixed + args.epsilon) {
      std::fprintf(stderr,
                   "FAIL: orchestrator warm byte miss %.4f exceeds best "
                   "fixed policy %s (%.4f) by more than epsilon %.4f on "
                   "'%s'\n",
                   orch, kFixedPolicies[best_idx], best_fixed, args.epsilon,
                   cell_names[c].c_str());
      eps_ok = false;
    }
  }
  if (!eps_ok) return 1;

  // --- Validate + write. ------------------------------------------------
  const std::string violation = obs::validate_bench_report(report.document());
  if (!violation.empty()) {
    std::fprintf(stderr, "FAIL: BENCH_orchestrator.json schema: %s\n",
                 violation.c_str());
    return 1;
  }
  const char* dir = std::getenv("CDN_BENCH_JSON_DIR");
  if (!report.write(dir ? dir : ".")) {
    std::fprintf(stderr, "FAIL: could not write %s\n",
                 report.file_name().c_str());
    return 1;
  }
  std::printf("\nwrote %s (%zu rows, schema valid, rerun-deterministic, "
              "orchestrator within %.3f of the best fixed policy "
              "everywhere)\n",
              report.file_name().c_str(), report.rows(), args.epsilon);
  return 0;
}

}  // namespace
}  // namespace cdn::orch_bench

int main(int argc, char** argv) {
  cdn::orch_bench::Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg == "--scale") {
      const char* v = next();
      if (!v) return cdn::orch_bench::usage();
      args.scale = std::atof(v);
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return cdn::orch_bench::usage();
      args.threads = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--epsilon") {
      const char* v = next();
      if (!v) return cdn::orch_bench::usage();
      args.epsilon = std::atof(v);
    } else {
      return cdn::orch_bench::usage();
    }
  }
  if (args.smoke) {
    // CI-sized: ~50k requests per cell, the full gate set still runs.
    args.scale = 0.05;
  }
  if (args.scale <= 0.0 || args.threads == 0 || args.epsilon <= 0.0) {
    return cdn::orch_bench::usage();
  }
  return cdn::orch_bench::run(args);
}

// Figure 7: SCIP vs SCI — the value of treating hit objects (promotion) as
// special insertions. The paper reports SCIP below SCI by 4.62 / 1.62 /
// 5.30 points on CDN-T / CDN-W / CDN-A.
//
// Expected shape here: SCIP <= SCI everywhere, with the visible gap on the
// P-ZRO-rich CDN-W-like workload (our promotion duel only engages when its
// exact-scale shadow monitors prove demotion pays; see EXPERIMENTS.md).
#include "bench_common.hpp"

#include "core/registry.hpp"
#include "sim/sweep.hpp"

namespace cdn::bench {
namespace {

void BM_Fig7(benchmark::State& state) {
  BenchJson bench_json("fig7_scip_vs_sci");
  for (auto _ : state) {
    Table table({"trace", "LRU", "SCI", "SCIP", "SCIP-SCI gap"});
    for (const Trace& t : traces()) {
      const std::uint64_t cap = cap_frac(t, kFig8SmallFrac);
      std::vector<SweepJob> jobs;
      for (const char* name : {"LRU", "SCI", "SCIP"}) {
        jobs.push_back(SweepJob{
            [name, cap] { return make_cache(name, cap); }, &t, SimOptions{}});
      }
      const auto res = run_sweep(jobs);
      bench_json.add_all(res);
      table.add_row({t.name, Table::pct(res[0].object_miss_ratio()),
                     Table::pct(res[1].object_miss_ratio()),
                     Table::pct(res[2].object_miss_ratio()),
                     Table::pct(res[2].object_miss_ratio() -
                                res[1].object_miss_ratio())});
      if (t.name == "CDN-W") {
        state.counters["w_scip"] = res[2].object_miss_ratio();
        state.counters["w_sci"] = res[1].object_miss_ratio();
      }
    }
    print_block(
        "Fig. 7: SCIP vs SCI, object miss ratio (cache = 5.8% of WSS)",
        table);
  }
}
BENCHMARK(BM_Fig7)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace cdn::bench

BENCHMARK_MAIN();

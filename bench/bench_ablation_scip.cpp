// Ablation: which of SCIP's mechanisms earns its keep?
//   full        — history-list per-object overrides + shadow-monitor duels
//                 + first-hit promotion gating (the shipping default)
//   no-override — duels only (no per-object history adjustment)
//   no-monitor  — per-object overrides only (global weights stay at MRU)
//   SCI         — no promotion treatment (Algorithm 3)
//   history x2  — history lists sized to the full cache instead of half
// Run on all three workloads at the Fig. 8 base size.
#include "bench_common.hpp"

#include <memory>

#include "core/scip_cache.hpp"
#include "core/scip_engine.hpp"
#include "sim/sweep.hpp"

namespace cdn::bench {
namespace {

CachePtr make_variant(const std::string& variant, std::uint64_t cap) {
  ScipParams p;
  p.seed = 4242;
  if (variant == "no-override") p.per_object_override = false;
  if (variant == "no-monitor") p.use_monitors = false;
  if (variant == "history x2") p.history_fraction = 1.0;
  std::shared_ptr<InsertionAdvisor> adv;
  if (variant == "SCI") {
    adv = std::make_shared<SciAdvisor>(cap, p);
  } else {
    adv = std::make_shared<ScipAdvisor>(cap, p);
  }
  return std::make_unique<AdvisedLruCache>(cap, std::move(adv));
}

void BM_Ablation(benchmark::State& state) {
  for (auto _ : state) {
    const std::vector<std::string> variants{
        "full", "no-override", "no-monitor", "SCI", "history x2"};
    Table table({"variant", "CDN-T", "CDN-W", "CDN-A"});
    std::vector<SweepJob> jobs;
    for (const auto& v : variants) {
      for (const Trace& t : traces()) {
        const std::uint64_t cap = cap_frac(t, kFig8SmallFrac);
        jobs.push_back(SweepJob{
            [v, cap] { return make_variant(v, cap); }, &t, SimOptions{}});
      }
    }
    const auto res = run_sweep(jobs);
    for (std::size_t v = 0; v < variants.size(); ++v) {
      table.add_row({variants[v],
                     Table::pct(res[v * 3 + 0].object_miss_ratio()),
                     Table::pct(res[v * 3 + 1].object_miss_ratio()),
                     Table::pct(res[v * 3 + 2].object_miss_ratio())});
    }
    print_block("SCIP mechanism ablation (object miss ratio)", table);
  }
}
BENCHMARK(BM_Ablation)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace cdn::bench

BENCHMARK_MAIN();

// Policy × stressor robustness table.
//
// Not a paper figure: this is the standing nonstationarity gate the ISSUE-7
// stressor layer exists for. Every scenario from trace/stressors/scenarios
// (baseline, drift, flash, scan, churn, sizemix, storm) is replayed under
// six policies (SCIP / SCI / LRU / LIP / GDSF / S4LRU) at a cache sized to
// 11.7% of each scenario's working set (the paper's "128 GB of CDN-T"
// fraction), through ParallelSweep.
//
// Gates enforced before the report is written (exit 1 on violation):
//   * bitwise rerun determinism — the whole sweep is run twice and every
//     row must be deterministic_equal, including the window series;
//   * SCIP robustness — under no scenario may SCIP's warm object miss
//     ratio exceed LRU's by more than the pinned margin (SCIP's set
//     dueling should track LRU wherever adaptation cannot win);
//   * the emitted document must pass obs::validate_bench_report.
//
// Output: BENCH_stress.json (schema "cdn-bench-report") under
// $CDN_BENCH_JSON_DIR (default "."), one row per (policy, scenario).
// Exit codes: 0 ok, 1 gate or validation failure, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "obs/bench_report.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "trace/stressors/scenarios.hpp"
#include "util/table.hpp"

namespace cdn::stress {
namespace {

constexpr const char* kPolicies[] = {"SCIP", "SCI",  "LRU",
                                     "LIP",  "GDSF", "S4LRU"};

/// Cache size as a fraction of each scenario's working set (the paper's
/// Fig. 8 medium point: "128 GB" of CDN-T's 1097 GB ~= 11.7%).
constexpr double kCapacityFrac = 0.117;

/// Pinned SCIP-vs-LRU warm-object-miss margin. Measured worst case across
/// the scenario palette: +0.007 at smoke scale (0.05, flash) and +0.022 at
/// full scale (0.25, storm/flash — the duel pays its sampling overhead
/// while the flash redirects churn the dueling sets). The pin leaves ~1.4x
/// headroom over the worst measured gap; a real adaptivity regression
/// (e.g. the duel latching onto bimodal insertion under drift) lands well
/// past it.
constexpr double kDefaultMargin = 0.03;

struct Args {
  bool smoke = false;
  double scale = 0.25;        ///< base-trace request-count scale
  std::size_t threads = 8;    ///< ParallelSweep worker threads
  double margin = kDefaultMargin;
};

int usage() {
  std::fprintf(stderr,
               "usage: bench_stress [--smoke] [--scale F] [--threads N]\n"
               "                    [--max-regression F]\n");
  return 2;
}

int run(const Args& args) {
  obs::BenchReport report("stress");

  // --- Build every stressed scenario trace up front (stable addresses
  // for the job grid).
  const std::vector<std::string>& names = stress_scenario_names();
  std::vector<Trace> traces;
  std::vector<std::uint64_t> capacities;
  traces.reserve(names.size());
  for (const std::string& name : names) {
    traces.push_back(make_stressed_trace(make_stress_scenario(name,
                                                              args.scale)));
    capacities.push_back(static_cast<std::uint64_t>(
        kCapacityFrac * static_cast<double>(traces.back().working_set_bytes())));
  }

  SimOptions opts;
  opts.window = 10'000;
  opts.warmup_frac = 0.2;

  std::vector<SweepJob> jobs;
  for (std::size_t s = 0; s < names.size(); ++s) {
    for (const char* policy : kPolicies) {
      const std::uint64_t cap = capacities[s];
      jobs.push_back(SweepJob{
          [policy, cap] { return make_cache(policy, cap); }, &traces[s],
          opts});
    }
  }

  std::printf("sweeping %zu policies x %zu scenarios (%zu jobs, scale %.3g, "
              "%zu threads)...\n",
              std::size(kPolicies), names.size(), jobs.size(), args.scale,
              args.threads);
  std::fflush(stdout);

  // --- Determinism gate: the entire sweep, twice, bitwise. --------------
  const std::vector<SimResult> results = run_sweep(jobs, args.threads);
  const std::vector<SimResult> rerun = run_sweep(jobs, args.threads);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!deterministic_equal(results[i], rerun[i]) ||
        results[i].window_miss_ratios != rerun[i].window_miss_ratios) {
      std::fprintf(stderr,
                   "FAIL: rerun of job %zu (%s on %s) is not bitwise "
                   "identical\n",
                   i, results[i].policy.c_str(), results[i].trace.c_str());
      return 1;
    }
  }

  // --- Robustness table + report rows. ----------------------------------
  std::vector<std::string> header = {"policy"};
  for (const std::string& n : names) header.push_back(n);
  Table table(header);
  const auto result_at = [&](std::size_t scenario,
                             std::size_t policy) -> const SimResult& {
    return results[scenario * std::size(kPolicies) + policy];
  };
  for (std::size_t p = 0; p < std::size(kPolicies); ++p) {
    std::vector<std::string> row = {kPolicies[p]};
    for (std::size_t s = 0; s < names.size(); ++s) {
      row.push_back(Table::pct(result_at(s, p).warm_object_miss_ratio()));
    }
    table.add_row(row);
  }
  std::printf("\n== Warm object miss ratio by scenario (cap %.1f%% WSS) ==\n%s",
              100.0 * kCapacityFrac, table.str().c_str());

  for (std::size_t s = 0; s < names.size(); ++s) {
    for (std::size_t p = 0; p < std::size(kPolicies); ++p) {
      obs::json::Value row = sim_result_row(result_at(s, p));
      row.set("scenario", names[s]);
      row.set("capacity_bytes", capacities[s]);
      row.set("capacity_frac", kCapacityFrac);
      row.set("scale", args.scale);
      report.add_row(std::move(row));
    }
  }

  // --- SCIP-vs-LRU margin gate. -----------------------------------------
  bool margin_ok = true;
  for (std::size_t s = 0; s < names.size(); ++s) {
    const double scip = result_at(s, 0).warm_object_miss_ratio();
    const double lru = result_at(s, 2).warm_object_miss_ratio();
    const double regression = scip - lru;
    if (regression > args.margin) {
      std::fprintf(stderr,
                   "FAIL: SCIP regresses below LRU by %.4f (> margin %.4f) "
                   "under '%s' (SCIP %.4f, LRU %.4f)\n",
                   regression, args.margin, names[s].c_str(), scip, lru);
      margin_ok = false;
    }
  }
  if (!margin_ok) return 1;

  // --- Validate + write. ------------------------------------------------
  const std::string violation = obs::validate_bench_report(report.document());
  if (!violation.empty()) {
    std::fprintf(stderr, "FAIL: BENCH_stress.json schema: %s\n",
                 violation.c_str());
    return 1;
  }
  const char* dir = std::getenv("CDN_BENCH_JSON_DIR");
  if (!report.write(dir ? dir : ".")) {
    std::fprintf(stderr, "FAIL: could not write %s\n",
                 report.file_name().c_str());
    return 1;
  }
  std::printf("\nwrote %s (%zu rows, schema valid, rerun-deterministic, "
              "SCIP within %.3f of LRU everywhere)\n",
              report.file_name().c_str(), report.rows(), args.margin);
  return 0;
}

}  // namespace
}  // namespace cdn::stress

int main(int argc, char** argv) {
  cdn::stress::Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg == "--scale") {
      const char* v = next();
      if (!v) return cdn::stress::usage();
      args.scale = std::atof(v);
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return cdn::stress::usage();
      args.threads = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--max-regression") {
      const char* v = next();
      if (!v) return cdn::stress::usage();
      args.margin = std::atof(v);
    } else {
      return cdn::stress::usage();
    }
  }
  if (args.smoke) {
    // CI-sized: ~50k requests per scenario, the full gate set still runs.
    args.scale = 0.05;
  }
  if (args.scale <= 0.0 || args.threads == 0 || args.margin <= 0.0) {
    return cdn::stress::usage();
  }
  return cdn::stress::run(args);
}

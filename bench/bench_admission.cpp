// Extension experiment (paper §7 discussion): insertion policies vs
// admission policies. The paper argues that denying never-reused data is
// the admission-side twin of SCIP's LRU-position insertion ("inserting
// ZROs at the LRU position ~ admission with a second chance"). This bench
// puts the two families side by side, plus the paper's future-work item —
// SCIP on a multi-chain (S4LRU) structure — on all three workloads.
#include "bench_common.hpp"

#include "core/registry.hpp"
#include "sim/sweep.hpp"

namespace cdn::bench {
namespace {

void BM_Admission(benchmark::State& state) {
  for (auto _ : state) {
    const std::vector<std::string> policies{
        "LRU", "2Q", "TinyLFU", "AdaptSize", "ARC",
        "LIRS", "SCIP", "S4LRU", "S4LRU-SCIP"};
    Table table({"policy", "CDN-T obj", "CDN-T byte", "CDN-W obj",
                 "CDN-W byte", "CDN-A obj", "CDN-A byte"});
    std::vector<SweepJob> jobs;
    for (const auto& name : policies) {
      for (const Trace& t : traces()) {
        const std::uint64_t cap = cap_frac(t, kFig8SmallFrac);
        jobs.push_back(SweepJob{
            [name, cap] { return make_cache(name, cap); }, &t, SimOptions{}});
      }
    }
    const auto res = run_sweep(jobs);
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const auto& rt = res[p * 3 + 0];
      const auto& rw = res[p * 3 + 1];
      const auto& ra = res[p * 3 + 2];
      table.add_row({policies[p], Table::pct(rt.object_miss_ratio()),
                     Table::pct(rt.byte_miss_ratio()),
                     Table::pct(rw.object_miss_ratio()),
                     Table::pct(rw.byte_miss_ratio()),
                     Table::pct(ra.object_miss_ratio()),
                     Table::pct(ra.byte_miss_ratio())});
    }
    print_block(
        "Extension: admission family, ARC/LIRS, and multi-chain SCIP",
        table);
  }
}
BENCHMARK(BM_Admission)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace cdn::bench

BENCHMARK_MAIN();

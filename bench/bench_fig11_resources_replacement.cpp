// Figure 11: resource consumption of the replacement algorithms on CDN-T —
// CPU cost, peak metadata memory, TPS (same methodology as Fig. 9).
//
// Expected shape: SCIP slightly above the trivial heuristics (S4LRU, GDSF)
// in CPU, far below the learned policies (LRB, GL-Cache); insertion
// efficiency below LRU/S4LRU but above the samplers and learners.
#include "bench_common.hpp"

#include "core/registry.hpp"
#include "sim/simulator.hpp"

namespace cdn::bench {
namespace {

void BM_Fig11(benchmark::State& state) {
  for (auto _ : state) {
    const Trace& t = trace_t();
    const std::uint64_t cap = cap_frac(t, kFig8SmallFrac);
    Table table({"policy", "obj miss", "cpu s/Mreq", "peak metadata",
                 "TPS (Mreq/s)"});
    for (const auto& name : replacement_policy_names()) {
      auto cache = make_cache(name, cap);
      const auto res = simulate(*cache, t);
      const double mreq = static_cast<double>(res.requests) / 1e6;
      table.add_row(
          {name, Table::pct(res.object_miss_ratio()),
           Table::fmt(res.cpu_seconds / mreq, 3),
           Table::bytes(static_cast<double>(res.metadata_peak_bytes)),
           Table::fmt(res.tps() / 1e6, 2)});
    }
    print_block("Fig. 11: replacement-algorithm resources (CDN-T)", table);
  }
}
BENCHMARK(BM_Fig11)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace cdn::bench

BENCHMARK_MAIN();

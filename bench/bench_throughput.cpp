// Throughput / latency benchmark for the sharded SCIP cache service
// (src/srv). Not a paper figure: this measures the serving substrate the
// ROADMAP's production north star needs — how request throughput scales
// with shard count, what sharding costs in hit ratio, and the service
// latency distribution under a closed-loop multi-worker load.
//
// Protocol per shard count (srv/shard_sweep.hpp):
//   replay phase    single-threaded, in trace order -> exact deterministic
//                   hit ratios + per-shard occupancy skew
//   throughput phase `--workers` closed-loop threads through a ThreadPool,
//                   best (min-wall) of `--trials` runs -> requests/sec and
//                   per-request service-latency percentiles
//
// Cross-checks performed before the report is written:
//   * the 1-shard replay of SCIP/LRU/SCI/LIP over the golden trace must
//     match the unsharded policies counter-for-counter (the golden-master
//     configs of test_golden_master) — sharding may cost hit ratio at
//     N > 1, but the 1-shard service must be bit-identical to a plain
//     cache, or the serving layer changed policy behavior;
//   * requests/sec must be monotone non-decreasing from 1 to 8 shards on
//     the CDN-T-like workload; if scheduler noise produces an inversion,
//     the slower row is re-measured (more min-wall trials) a bounded
//     number of times;
//   * the emitted document must pass obs::validate_bench_report.
//
// Output: BENCH_throughput.json (schema "cdn-bench-report") under
// $CDN_BENCH_JSON_DIR (default "."), one row per (trace, shard count).
// Exit codes: 0 ok, 1 cross-check or validation failure, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "obs/bench_report.hpp"
#include "sim/simulator.hpp"
#include "srv/shard_sweep.hpp"
#include "trace/generator.hpp"
#include "util/table.hpp"

namespace cdn::srv {
namespace {

// The golden-master workload of tests/test_golden_master.cpp: same spec,
// same capacity, same (default) policy seed, so the unsharded counters
// here are the exact numbers that suite pins.
WorkloadSpec golden_spec() {
  WorkloadSpec spec;
  spec.name = "golden";
  spec.seed = 20260806;
  spec.n_requests = 40'000;
  spec.catalog_size = 4'000;
  spec.zipf_alpha = 0.9;
  spec.p_onehit = 0.25;
  spec.p_burst = 0.08;
  spec.burst_gap_mean = 800;
  spec.mean_size = 8'000;
  spec.size_sigma = 1.2;
  spec.max_size = 1 << 20;
  spec.scan_interval = 15'000;
  spec.scan_length = 2'000;
  spec.scan_onehit = 0.9;
  return spec;
}
constexpr std::uint64_t kGoldenCapacity = 8ULL << 20;

struct Args {
  bool smoke = false;
  double scale = 0.25;       ///< CDN-T-like request-count scale
  /// Closed-loop worker threads. Deliberately oversubscribed relative to
  /// typical core counts: preemption of a lock holder is the contention
  /// mode a single stripe suffers and sharding relieves, so oversubscribing
  /// makes the sweep's scaling signal robust to how busy the host is.
  std::size_t workers = 16;
  std::size_t batch = 256;
  std::size_t trials = 5;
  std::string policy = "SCIP";
};

int usage() {
  std::fprintf(stderr,
               "usage: bench_throughput [--smoke] [--scale F] [--workers N]\n"
               "                        [--batch N] [--trials N] "
               "[--policy NAME]\n");
  return 2;
}

bool replay_matches_unsharded(const SimResult& sharded,
                              const SimResult& unsharded) {
  return sharded.requests == unsharded.requests &&
         sharded.hits == unsharded.hits &&
         sharded.bytes_total == unsharded.bytes_total &&
         sharded.bytes_hit == unsharded.bytes_hit &&
         sharded.warm_requests == unsharded.warm_requests &&
         sharded.warm_hits == unsharded.warm_hits &&
         sharded.warm_bytes_total == unsharded.warm_bytes_total &&
         sharded.warm_bytes_hit == unsharded.warm_bytes_hit &&
         sharded.window_miss_ratios == unsharded.window_miss_ratios;
}

obs::json::Value sweep_row(const std::string& policy, const ShardSweepRow& r,
                           std::size_t workers) {
  obs::json::Value row = sim_result_row(r.replay);
  row.set("policy", policy);  // replay reports "sharded(...)"; keep it flat
  row.set("service", r.replay.policy);
  row.set("shards", static_cast<std::uint64_t>(r.shards));
  row.set("workers", static_cast<std::uint64_t>(workers));
  row.set("trials", static_cast<std::uint64_t>(r.trials_run));
  row.set("rps", r.loadgen.rps());
  row.set("tps", r.loadgen.rps());  // tps == concurrent requests/sec here
  row.set("concurrent_object_hit_ratio",
          r.loadgen.requests
              ? static_cast<double>(r.loadgen.hits) /
                    static_cast<double>(r.loadgen.requests)
              : 0.0);
  row.set("latency_p50_ns", r.loadgen.latency_p50_ns());
  row.set("latency_p99_ns", r.loadgen.latency_p99_ns());
  row.set("latency_p999_ns", r.loadgen.latency_p999_ns());
  row.set("shard_skew", r.skew);
  obs::json::Array used;
  for (const ShardStats& s : r.shard_stats) {
    used.push_back(obs::json::Value(s.used_bytes));
  }
  row.set("shard_used_bytes", obs::json::Value(std::move(used)));
  return row;
}

int run(const Args& args) {
  obs::BenchReport report("throughput");

  // --- Golden cross-check: 1-shard service == unsharded policy. ---------
  const Trace golden = generate_trace(golden_spec());
  SimOptions golden_opts;
  golden_opts.window = 10'000;
  golden_opts.warmup_frac = 0.2;
  bool golden_ok = true;
  Table golden_table({"policy", "unsharded hits", "1-shard hits", "match"});
  for (const char* policy : {"SCIP", "LRU", "SCI", "LIP"}) {
    auto unsharded_cache = make_cache(policy, kGoldenCapacity);
    const SimResult unsharded =
        simulate(*unsharded_cache, golden, golden_opts);

    ShardedCacheConfig cc;
    cc.policy = policy;
    cc.capacity_bytes = kGoldenCapacity;
    cc.shards = 1;
    ShardedCache service(cc);
    const SimResult sharded = simulate(service, golden, golden_opts);

    const bool match = replay_matches_unsharded(sharded, unsharded);
    golden_ok = golden_ok && match;
    golden_table.add_row({policy, std::to_string(unsharded.hits),
                          std::to_string(sharded.hits),
                          match ? "yes" : "NO"});

    obs::json::Value row = sim_result_row(sharded);
    row.set("policy", policy);
    row.set("service", sharded.policy);
    row.set("shards", static_cast<std::uint64_t>(1));
    row.set("golden_match", match);
    report.add_row(std::move(row));
  }
  std::printf("\n== Golden cross-check: 1-shard service vs unsharded ==\n%s",
              golden_table.str().c_str());
  if (!golden_ok) {
    std::fprintf(stderr,
                 "FAIL: 1-shard ShardedCache diverged from the unsharded "
                 "golden-master configs\n");
    return 1;
  }

  // --- Shard-count sweep on the CDN-T-like workload. --------------------
  const Trace trace = generate_trace(cdn_t_like(args.scale));
  ShardSweepConfig config;
  config.policy = args.policy;
  config.capacity_bytes = static_cast<std::uint64_t>(
      0.117 * static_cast<double>(trace.working_set_bytes()));
  config.shard_counts = {1, 2, 4, 8, 16};
  config.workers = args.workers;
  config.batch_size = args.batch;
  config.trials = args.trials;

  std::printf("\nsweeping %s over %zu requests (%s), %zu workers, "
              "%zu trials/shard-count...\n",
              args.policy.c_str(), trace.size(), trace.name.c_str(),
              args.workers, args.trials);
  std::fflush(stdout);
  std::vector<ShardSweepRow> rows = run_shard_sweep(trace, config);

  // Monotonicity repair over 1..8 shards: an inversion under min-wall
  // measurement is noise (per-request work does not grow with shard count
  // after the O(n + shards) batch grouping), so re-measure the contested
  // prefix in coherent epochs until the curve settles; a genuinely slower
  // configuration would survive all rounds and be reported below.
  const bool monotone = repair_monotone_rps(trace, config, rows, 8, 4, 25);

  Table table({"shards", "rps", "p50 us", "p99 us", "p99.9 us",
               "warm obj miss", "warm byte miss", "skew", "trials"});
  for (const ShardSweepRow& r : rows) {
    table.add_row(
        {std::to_string(r.shards), Table::fmt(r.loadgen.rps(), 0),
         Table::fmt(static_cast<double>(r.loadgen.latency_p50_ns()) / 1e3, 1),
         Table::fmt(static_cast<double>(r.loadgen.latency_p99_ns()) / 1e3, 1),
         Table::fmt(static_cast<double>(r.loadgen.latency_p999_ns()) / 1e3,
                    1),
         Table::pct(r.replay.warm_object_miss_ratio()),
         Table::pct(r.replay.warm_byte_miss_ratio()), Table::fmt(r.skew, 3),
         std::to_string(r.trials_run)});
    report.add_row(sweep_row(args.policy, r, args.workers));
  }
  std::printf("\n== Throughput vs shard count (%s, %s) ==\n%s",
              args.policy.c_str(), trace.name.c_str(), table.str().c_str());

  if (!monotone) {
    for (std::size_t k = 1; k < rows.size() && rows[k].shards <= 8; ++k) {
      if (rows[k].loadgen.rps() < rows[k - 1].loadgen.rps()) {
        std::fprintf(stderr,
                     "warning: rps not monotone at %zu -> %zu shards "
                     "(%.0f -> %.0f) after re-measurement\n",
                     rows[k - 1].shards, rows[k].shards,
                     rows[k - 1].loadgen.rps(), rows[k].loadgen.rps());
      }
    }
  }

  // --- Validate + write. ------------------------------------------------
  const std::string violation =
      obs::validate_bench_report(report.document());
  if (!violation.empty()) {
    std::fprintf(stderr, "FAIL: BENCH_throughput.json schema: %s\n",
                 violation.c_str());
    return 1;
  }
  const char* dir = std::getenv("CDN_BENCH_JSON_DIR");
  if (!report.write(dir ? dir : ".")) {
    std::fprintf(stderr, "FAIL: could not write %s\n",
                 report.file_name().c_str());
    return 1;
  }
  std::printf("\nwrote %s (%zu rows, schema valid)\n",
              report.file_name().c_str(), report.rows());
  return 0;
}

}  // namespace
}  // namespace cdn::srv

int main(int argc, char** argv) {
  cdn::srv::Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg == "--scale") {
      const char* v = next();
      if (!v) return cdn::srv::usage();
      args.scale = std::atof(v);
    } else if (arg == "--workers") {
      const char* v = next();
      if (!v) return cdn::srv::usage();
      args.workers = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--batch") {
      const char* v = next();
      if (!v) return cdn::srv::usage();
      args.batch = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--trials") {
      const char* v = next();
      if (!v) return cdn::srv::usage();
      args.trials = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--policy") {
      const char* v = next();
      if (!v) return cdn::srv::usage();
      args.policy = v;
    } else {
      return cdn::srv::usage();
    }
  }
  if (args.smoke) {
    // CI-sized run: long enough per trial (~10^5 requests) that a trial
    // spans many scheduler quanta and the scaling signal beats timer noise,
    // small enough to finish in seconds.
    args.scale = 0.12;
    args.trials = 3;
  }
  if (args.scale <= 0.0 || args.workers == 0 || args.batch == 0) {
    return cdn::srv::usage();
  }
  return cdn::srv::run(args);
}

// Figure 8: miss ratios of Belady, SCIP and the eight insertion/promotion
// baselines (all on LRU victim selection) on the three workloads at cache
// sizes equivalent to the paper's 64 / 128 / 256 GB (5.8 / 11.7 / 23.3 %
// of the working set).
//
// Expected shape: Belady is the floor; LIP the worst by a wide margin;
// SCIP at or near the best of the adaptive group (paper: SCIP beats ASC-IP
// by 4.69/1.92/3.26 points). Note ASC-IP trades byte miss ratio for object
// miss ratio via its size filter — we report both (the paper's simulator,
// LRB's, reports byte miss ratio by default).
#include "bench_common.hpp"

#include "core/registry.hpp"
#include "sim/sweep.hpp"

namespace cdn::bench {
namespace {

void BM_Fig8(benchmark::State& state) {
  for (auto _ : state) {
    const struct {
      double frac;
      const char* label;
    } sizes[] = {{kFig8SmallFrac, "(a) 5.8% of WSS  (paper: 64 GB)"},
                 {kFig8MediumFrac, "(b) 11.7% of WSS (paper: 128 GB)"},
                 {kFig8LargeFrac, "(c) 23.3% of WSS (paper: 256 GB)"}};
    std::vector<std::string> policies{"Belady"};
    for (const auto& n : insertion_policy_names()) policies.push_back(n);

    for (const auto& size : sizes) {
      Table table({"policy", "CDN-T obj", "CDN-T byte", "CDN-W obj",
                   "CDN-W byte", "CDN-A obj", "CDN-A byte"});
      // One parallel sweep per size covering policies x traces.
      std::vector<SweepJob> jobs;
      for (const auto& name : policies) {
        for (const Trace& t : traces()) {
          const std::uint64_t cap = cap_frac(t, size.frac);
          jobs.push_back(SweepJob{
              [name, cap] { return make_cache(name, cap); }, &t,
              SimOptions{}});
        }
      }
      const auto res = run_sweep(jobs);
      for (std::size_t p = 0; p < policies.size(); ++p) {
        const auto& rt = res[p * 3 + 0];
        const auto& rw = res[p * 3 + 1];
        const auto& ra = res[p * 3 + 2];
        table.add_row({policies[p], Table::pct(rt.object_miss_ratio()),
                       Table::pct(rt.byte_miss_ratio()),
                       Table::pct(rw.object_miss_ratio()),
                       Table::pct(rw.byte_miss_ratio()),
                       Table::pct(ra.object_miss_ratio()),
                       Table::pct(ra.byte_miss_ratio())});
      }
      print_block(std::string("Fig. 8 ") + size.label, table);
    }
  }
}
BENCHMARK(BM_Fig8)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace cdn::bench

BENCHMARK_MAIN();

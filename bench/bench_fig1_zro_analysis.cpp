// Figure 1: the motivational analysis. For each workload and cache sizes
// A-D = 0.5 / 1 / 5 / 10 % of the working set (the paper's fractions of X),
// under LRU:
//   (a,d) share of ZROs among misses and of P-ZROs among hits,
//   (c,f) share of A-ZROs among ZROs and A-P-ZROs among P-ZROs,
//   (b,e) the LRU miss ratio and the part removable by perfect ZRO / P-ZRO
//         placement (the paper's slashed area), from the oracle replay.
//
// Expected shape: CDN-A has the highest ZRO share; CDN-W the highest P-ZRO
// share of hits (paper: 21.7 % average); shares shrink as the cache grows.
#include "bench_common.hpp"

#include "analysis/oracle_replay.hpp"
#include "analysis/residency.hpp"

namespace cdn::bench {
namespace {

void BM_Fig1(benchmark::State& state) {
  for (auto _ : state) {
    for (const Trace& t : traces()) {
      Table table({"size", "LRU miss", "ZRO/miss", "A-ZRO/ZRO", "P-ZRO/hit",
                   "A-P-ZRO/P-ZRO", "reducible(ZRO)", "reducible(both)"});
      for (const double frac : {0.005, 0.01, 0.05, 0.10}) {
        const std::uint64_t cap = cap_frac(t, frac);
        const auto an = analysis::analyze_zro(t, cap);
        const double mr_zro = analysis::oracle_replay_miss_ratio(
            t, an, cap, analysis::OracleMode::kZroOnly, 1.0);
        const double mr_both = analysis::oracle_replay_miss_ratio(
            t, an, cap, analysis::OracleMode::kBoth, 1.0);
        table.add_row({Table::pct(frac, 1), Table::pct(an.miss_ratio()),
                       Table::pct(an.zro_fraction_of_misses()),
                       Table::pct(an.azro_fraction_of_zros()),
                       Table::pct(an.pzro_fraction_of_hits()),
                       Table::pct(an.apzro_fraction_of_pzros()),
                       Table::pct(an.miss_ratio() - mr_zro),
                       Table::pct(an.miss_ratio() - mr_both)});
      }
      print_block("Fig. 1 (" + t.name + ")", table);
    }
  }
}
BENCHMARK(BM_Fig1)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace cdn::bench

BENCHMARK_MAIN();

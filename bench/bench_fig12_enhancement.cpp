// Figure 12: SCIP as a generic component — enhancing LRU-K and LRB by
// replacing their insertion/promotion treatment, with ASC-IP as the
// reference enhancer. The paper reports LRU-K-SCIP / LRB-SCIP below their
// bases by 8.05 / 0.44 points, exceeding ASC-IP's enhancement.
#include "bench_common.hpp"

#include "core/registry.hpp"
#include "sim/sweep.hpp"

namespace cdn::bench {
namespace {

void BM_Fig12(benchmark::State& state) {
  for (auto _ : state) {
    const std::vector<std::string> policies{"LRU-2",     "LRU-2-ASC-IP",
                                            "LRU-2-SCIP", "LRB",
                                            "LRB-ASC-IP", "LRB-SCIP"};
    Table table({"policy", "CDN-T", "CDN-W", "CDN-A", "avg"});
    std::vector<SweepJob> jobs;
    for (const auto& name : policies) {
      for (const Trace& t : traces()) {
        const std::uint64_t cap = cap_frac(t, kFig8SmallFrac);
        jobs.push_back(SweepJob{
            [name, cap] { return make_cache(name, cap); }, &t, SimOptions{}});
      }
    }
    const auto res = run_sweep(jobs);
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const double mt = res[p * 3 + 0].object_miss_ratio();
      const double mw = res[p * 3 + 1].object_miss_ratio();
      const double ma = res[p * 3 + 2].object_miss_ratio();
      table.add_row({policies[p], Table::pct(mt), Table::pct(mw),
                     Table::pct(ma), Table::pct((mt + mw + ma) / 3.0)});
    }
    print_block("Fig. 12: enhancing LRU-K and LRB (object miss ratio)",
                table);
  }
}
BENCHMARK(BM_Fig12)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace cdn::bench

BENCHMARK_MAIN();

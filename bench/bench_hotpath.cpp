// Hot-path index microbenchmark: cdn::FlatMap vs std::unordered_map.
//
// Every simulated request funnels through the id -> slot indexes of
// LruQueue / GhostList (and SCIP-S4LRU's id -> level map), so the map's
// find/insert/erase/touch cost is the simulator's per-request floor. This
// bench measures exactly that mix two ways:
//
//   microbench   a pre-generated op stream (find-hit, find-miss, touch,
//                erase+insert churn) at simulator-realistic occupancy runs
//                through both map types; identical keys, identical order,
//                checksums compared, best-of-trials wall time. FlatMap must
//                be >= 1.2x the std::unordered_map op throughput or the
//                bench exits non-zero — this is the PR's perf claim, kept
//                enforceable.
//   end-to-end   simulate() replay of LRU and SCIP over the CDN-T-like
//                workload (the indexes under test in their real seats),
//                best-of-trials requests/sec for the trajectory record.
//
// Output: BENCH_hotpath.json (schema "cdn-bench-report") under
// $CDN_BENCH_JSON_DIR (default "."): two microbench rows (policy "FlatMap"
// / "unordered_map", trace "hotpath-mix") and one row per replay policy.
// Exit codes: 0 ok, 1 speedup/cross-check/validation failure, 2 usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/registry.hpp"
#include "obs/bench_report.hpp"
#include "sim/simulator.hpp"
#include "trace/generator.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace cdn {
namespace {

struct Args {
  bool smoke = false;
  std::size_t live = 60'000;   ///< steady-state live keys (~LruQueue size)
  std::size_t ops = 4'000'000; ///< mixed ops per trial
  std::size_t trials = 5;      ///< best-of (min wall) trials
  double scale = 0.25;         ///< CDN-T-like scale for the replay half
  /// Ratcheted floor on the advisor's overhead: SCIP replay wall time must
  /// stay within this factor of LRU's on the same trace (best-of-trials
  /// each). The pre-optimization gap was ~2.5x. 0 = auto: 1.5 at smoke
  /// scale (the CI-enforced floor — ghost state is mostly cache-resident,
  /// so the ratio isolates advisor code overhead), 1.75 at full scale
  /// (the ghost working set spills the LLC and the ratio additionally
  /// carries SCIP's extra cold DRAM lines per miss; measured 1.59-1.60
  /// best-of-5 on the reference host).
  double max_scip_ratio = 0.0;
};

int usage() {
  std::fprintf(stderr,
               "usage: bench_hotpath [--smoke] [--live N] [--ops N]\n"
               "                     [--trials N] [--scale F]\n"
               "                     [--max-scip-ratio F  (0 = auto:\n"
               "                      1.5 smoke / 1.75 full scale)]\n");
  return 2;
}

// ------------------------------------------------------------ op stream --

enum class Op : std::uint8_t {
  kFindHit,   ///< lookup of a live key (LruQueue::find on a resident id)
  kFindMiss,  ///< lookup of an absent key (every miss consults the index)
  kTouch,     ///< lookup + value write (touch_mru updates the slot index)
  kChurn,     ///< erase live key + insert fresh key (evict + admit)
};

struct OpRec {
  Op op;
  std::uint64_t key;   ///< lookup/erase target
  std::uint64_t key2;  ///< kChurn: the freshly admitted key
};

/// The id a warm fill / op stream uses for logical object `i`. Object ids
/// are "hash of the URL/key in a real deployment" (trace/request.hpp), so
/// the bench spreads its logical counters through hash64 — a bijection, so
/// ids stay distinct. Benchmarking with raw sequential counters instead
/// would hand std::unordered_map two artifacts real ids do not have:
/// libstdc++'s identity hash makes modulo-by-prime nearly free on small
/// keys, and FIFO eviction order becomes sequential-bucket order, which
/// the prefetcher turns into an artificial churn speedup.
std::uint64_t object_id(std::uint64_t i) { return hash64(i); }

/// Pre-generates the op stream so both maps replay byte-identical work and
/// RNG cost stays outside the timed loop. Live keys are managed as a FIFO
/// ring (index i holds the i-th oldest), matching cache churn where the
/// erased id is old and the inserted id is new; fresh admissions use the
/// >= 2^40 logical range the trace generator assigns to one-hit objects.
std::vector<OpRec> make_ops(std::size_t live, std::size_t n_ops,
                            std::uint64_t seed) {
  std::vector<std::uint64_t> ring(live);
  for (std::size_t i = 0; i < live; ++i) ring[i] = object_id(i);
  std::size_t oldest = 0;
  std::uint64_t next_fresh = 1ULL << 40;

  Rng rng(seed);
  std::vector<OpRec> ops;
  ops.reserve(n_ops);
  for (std::size_t i = 0; i < n_ops; ++i) {
    const std::uint64_t dice = rng.below(100);
    if (dice < 50) {  // 50% resident lookups
      ops.push_back({Op::kFindHit, ring[rng.below(live)], 0});
    } else if (dice < 65) {  // 15% miss lookups (ids never inserted)
      ops.push_back(
          {Op::kFindMiss, (1ULL << 62) + rng.next() % (1ULL << 40), 0});
    } else if (dice < 85) {  // 20% touches
      ops.push_back({Op::kTouch, ring[rng.below(live)], 0});
    } else {  // 15% churn: evict the oldest resident, admit a fresh id
      const std::size_t slot = oldest;
      oldest = (oldest + 1) % live;
      ops.push_back({Op::kChurn, ring[slot], object_id(next_fresh)});
      ring[slot] = object_id(next_fresh);
      ++next_fresh;
    }
  }
  return ops;
}

// Uniform adapter so one replay loop serves both map types.
std::uint32_t* lookup(FlatMap<std::uint64_t, std::uint32_t>& m,
                      std::uint64_t k) {
  return m.find(k);
}
std::uint32_t* lookup(std::unordered_map<std::uint64_t, std::uint32_t>& m,
                      std::uint64_t k) {
  const auto it = m.find(k);
  return it == m.end() ? nullptr : &it->second;
}
void put(FlatMap<std::uint64_t, std::uint32_t>& m, std::uint64_t k,
         std::uint32_t v) {
  m.insert(k, v);
}
void put(std::unordered_map<std::uint64_t, std::uint32_t>& m, std::uint64_t k,
         std::uint32_t v) {
  m.emplace(k, v);
}

template <typename M>
std::uint64_t replay_ops(M& m, const std::vector<OpRec>& ops) {
  std::uint64_t checksum = 0;
  for (const OpRec& r : ops) {
    switch (r.op) {
      case Op::kFindHit:
      case Op::kFindMiss: {
        const std::uint32_t* p = lookup(m, r.key);
        checksum += p ? *p : 1;
        break;
      }
      case Op::kTouch: {
        std::uint32_t* p = lookup(m, r.key);
        if (p) checksum += ++*p;
        break;
      }
      case Op::kChurn: {
        m.erase(r.key);
        put(m, r.key2, static_cast<std::uint32_t>(r.key2));
        checksum += r.key2;
        break;
      }
    }
  }
  return checksum;
}

struct MicroResult {
  double best_seconds = 0.0;
  std::uint64_t checksum = 0;
  std::uint64_t footprint_bytes = 0;
};

template <typename M>
MicroResult run_micro(const std::vector<OpRec>& ops, std::size_t live,
                      std::size_t trials, std::uint64_t footprint) {
  MicroResult out;
  for (std::size_t t = 0; t < trials; ++t) {
    M m;
    // Untimed warm fill to steady-state occupancy (values = slot indexes,
    // as in LruQueue).
    for (std::size_t k = 0; k < live; ++k) {
      put(m, object_id(k), static_cast<std::uint32_t>(k));
    }
    Stopwatch sw;
    const std::uint64_t checksum = replay_ops(m, ops);
    const double secs = sw.seconds();
    if (t == 0) {
      out.checksum = checksum;
      out.footprint_bytes = footprint ? footprint : 0;
    } else if (checksum != out.checksum) {
      // Any divergence across trials means nondeterminism in the map.
      std::fprintf(stderr, "FAIL: checksum diverged across trials\n");
      std::exit(1);
    }
    if (t == 0 || secs < out.best_seconds) out.best_seconds = secs;
  }
  return out;
}

obs::json::Value micro_row(const std::string& policy, std::size_t n_ops,
                           double tps, std::uint64_t footprint,
                           std::size_t live, std::size_t trials) {
  obs::json::Value row;
  row.set("policy", policy);
  row.set("trace", "hotpath-mix");
  row.set("requests", static_cast<std::uint64_t>(n_ops));
  row.set("tps", tps);
  // Miss-ratio axes do not apply to a raw map benchmark; zero keeps the
  // rows schema-conformant so the trajectory differ can parse them.
  row.set("object_miss_ratio", 0.0);
  row.set("byte_miss_ratio", 0.0);
  row.set("warm_object_miss_ratio", 0.0);
  row.set("warm_byte_miss_ratio", 0.0);
  row.set("metadata_peak_bytes", footprint);
  row.set("live_keys", static_cast<std::uint64_t>(live));
  row.set("trials", static_cast<std::uint64_t>(trials));
  return row;
}

int run(const Args& args) {
  obs::BenchReport report("hotpath");

  // --- Microbench: identical op stream through both map types. ----------
  std::printf("generating %zu ops at %zu live keys...\n", args.ops,
              args.live);
  const std::vector<OpRec> ops = make_ops(args.live, args.ops, /*seed=*/71);

  using Flat = FlatMap<std::uint64_t, std::uint32_t>;
  using Umap = std::unordered_map<std::uint64_t, std::uint32_t>;

  // Footprints at steady state, for the metadata column: FlatMap's slot
  // array vs unordered_map's nodes + bucket array (estimated: the node
  // layout is libstdc++'s hash node of next-pointer + hash + pair).
  Flat flat_probe;
  Umap umap_probe;
  for (std::size_t k = 0; k < args.live; ++k) {
    flat_probe.insert(object_id(k), 0);
    umap_probe.emplace(object_id(k), 0);
  }
  const std::uint64_t flat_bytes =
      flat_probe.capacity() * (sizeof(std::uint64_t) + sizeof(std::uint32_t) + 1);
  const std::uint64_t umap_bytes =
      umap_probe.bucket_count() * sizeof(void*) +
      umap_probe.size() *
          (sizeof(std::pair<const std::uint64_t, std::uint32_t>) +
           2 * sizeof(void*));

  const MicroResult flat = run_micro<Flat>(ops, args.live, args.trials,
                                           flat_bytes);
  const MicroResult umap = run_micro<Umap>(ops, args.live, args.trials,
                                           umap_bytes);
  if (flat.checksum != umap.checksum) {
    std::fprintf(stderr,
                 "FAIL: FlatMap and unordered_map disagree on the op "
                 "stream (checksums %llu vs %llu)\n",
                 static_cast<unsigned long long>(flat.checksum),
                 static_cast<unsigned long long>(umap.checksum));
    return 1;
  }

  const double n_ops = static_cast<double>(ops.size());
  const double flat_tps = n_ops / flat.best_seconds;
  const double umap_tps = n_ops / umap.best_seconds;
  const double speedup = flat_tps / umap_tps;

  Table table({"index", "Mops/s", "footprint KiB", "speedup"});
  table.add_row({"FlatMap", Table::fmt(flat_tps / 1e6, 1),
                 Table::fmt(static_cast<double>(flat_bytes) / 1024.0, 0),
                 Table::fmt(speedup, 2)});
  table.add_row({"unordered_map", Table::fmt(umap_tps / 1e6, 1),
                 Table::fmt(static_cast<double>(umap_bytes) / 1024.0, 0),
                 "1.00"});
  std::printf("\n== Hot-path index microbench (%zu ops, %zu live keys, "
              "best of %zu) ==\n%s",
              ops.size(), args.live, args.trials, table.str().c_str());

  obs::json::Value flat_row = micro_row("FlatMap", ops.size(), flat_tps,
                                        flat_bytes, args.live, args.trials);
  flat_row.set("speedup_vs_unordered_map", speedup);
  report.add_row(std::move(flat_row));
  report.add_row(micro_row("unordered_map", ops.size(), umap_tps, umap_bytes,
                           args.live, args.trials));

  // --- End-to-end: replay rps with the flat indexes in their real seats. -
  // Replay streams the struct-of-arrays id/size columns (the only fields
  // the queue policies read): 16 bytes of trace traffic per request instead
  // of a 32-byte Request record, and the id column feeds the replay loop's
  // lookahead prefetch. Results are deterministically equal to replaying
  // the AoS trace (test_simulator pins that).
  const Trace trace = generate_trace(cdn_t_like(args.scale));
  const TraceColumns cols =
      to_columns(trace, /*keep_time=*/false, /*keep_next=*/false);
  const std::uint64_t capacity = static_cast<std::uint64_t>(
      0.117 * static_cast<double>(trace.working_set_bytes()));
  Table e2e({"policy", "replay rps", "warm obj miss", "metadata KiB"});
  // Interleave the two policies' trials (LRU, SCIP, LRU, SCIP, ...) instead
  // of running each policy's trials as a contiguous phase. The ratio gate
  // below divides one wall time by the other, and on a busy or
  // frequency-scaling host two sequential phases sample different machine
  // conditions — phase ordering alone swung the measured ratio by tens of
  // percent. Adjacent trials see near-identical conditions, so best-of
  // picks both policies' peaks from the same windows and the ratio isolates
  // the advisor overhead it is meant to bound.
  constexpr const char* kPolicies[] = {"LRU", "SCIP"};
  SimResult best[2];
  for (std::size_t t = 0; t < args.trials; ++t) {
    for (std::size_t p = 0; p < 2; ++p) {
      auto cache = make_cache(kPolicies[p], capacity);
      SimResult r = simulate(*cache, cols);
      if (t == 0 || r.wall_seconds < best[p].wall_seconds) {
        best[p] = std::move(r);
      }
    }
  }
  const double lru_wall = best[0].wall_seconds;
  const double scip_wall = best[1].wall_seconds;
  for (std::size_t p = 0; p < 2; ++p) {
    const SimResult& b = best[p];
    e2e.add_row({kPolicies[p], Table::fmt(b.tps(), 0),
                 Table::pct(b.warm_object_miss_ratio()),
                 Table::fmt(static_cast<double>(b.metadata_peak_bytes) /
                                1024.0,
                            0)});
    obs::json::Value row = sim_result_row(b);
    if (p == 1 && lru_wall > 0.0) {
      row.set("scip_vs_lru_wall_ratio", b.wall_seconds / lru_wall);
    }
    report.add_row(std::move(row));
  }
  const double scip_ratio = lru_wall > 0.0 ? scip_wall / lru_wall : 0.0;
  std::printf("\n== End-to-end replay (%s, %zu requests, best of %zu) ==\n%s"
              "SCIP/LRU wall ratio: %.2fx (gate <= %.2fx)\n",
              trace.name.c_str(), trace.size(), args.trials,
              e2e.str().c_str(), scip_ratio, args.max_scip_ratio);

  // --- Enforce the perf claims, validate, write. ------------------------
  if (speedup < 1.2) {
    std::fprintf(stderr,
                 "FAIL: FlatMap speedup %.2fx < 1.2x over "
                 "std::unordered_map on the hot-path mix\n",
                 speedup);
    return 1;
  }
  if (scip_ratio > args.max_scip_ratio) {
    std::fprintf(stderr,
                 "FAIL: SCIP replay wall time %.2fx LRU's exceeds the "
                 "%.2fx advisor-overhead floor\n",
                 scip_ratio, args.max_scip_ratio);
    return 1;
  }
  const std::string violation = obs::validate_bench_report(report.document());
  if (!violation.empty()) {
    std::fprintf(stderr, "FAIL: BENCH_hotpath.json schema: %s\n",
                 violation.c_str());
    return 1;
  }
  const char* dir = std::getenv("CDN_BENCH_JSON_DIR");
  if (!report.write(dir ? dir : ".")) {
    std::fprintf(stderr, "FAIL: could not write %s\n",
                 report.file_name().c_str());
    return 1;
  }
  std::printf("\nwrote %s (%zu rows, schema valid, speedup %.2fx)\n",
              report.file_name().c_str(), report.rows(), speedup);
  return 0;
}

}  // namespace
}  // namespace cdn

int main(int argc, char** argv) {
  cdn::Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg == "--live") {
      const char* v = next();
      if (!v) return cdn::usage();
      args.live = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--ops") {
      const char* v = next();
      if (!v) return cdn::usage();
      args.ops = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--trials") {
      const char* v = next();
      if (!v) return cdn::usage();
      args.trials = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--scale") {
      const char* v = next();
      if (!v) return cdn::usage();
      args.scale = std::atof(v);
    } else if (arg == "--max-scip-ratio") {
      const char* v = next();
      if (!v) return cdn::usage();
      args.max_scip_ratio = std::atof(v);
    } else {
      return cdn::usage();
    }
  }
  if (args.smoke) {
    // CI-sized: enough ops that the timed region spans many scheduler
    // quanta (the speedup gate needs a stable ratio), small enough for
    // seconds-scale total runtime.
    args.live = 20'000;
    args.ops = 1'000'000;
    args.trials = 3;
    args.scale = 0.08;
  }
  if (args.max_scip_ratio == 0.0) {
    args.max_scip_ratio = args.smoke ? 1.5 : 1.75;
  }
  if (args.live == 0 || args.ops == 0 || args.trials == 0 ||
      args.scale <= 0.0 || args.max_scip_ratio <= 0.0) {
    return cdn::usage();
  }
  return cdn::run(args);
}

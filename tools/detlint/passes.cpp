#include "passes.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <utility>

namespace cdn::detlint {
namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool contains_word(const std::string& s, const std::string& w) {
  std::size_t pos = 0;
  while ((pos = s.find(w, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
    const std::size_t end = pos + w.size();
    const bool right_ok = end >= s.size() || !is_ident_char(s[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Walks backward from `pos` (exclusive) over a receiver expression chain
/// of identifiers joined by `.` / `->` with [...] index suffixes.
std::string receiver_before(const std::string& s, std::size_t pos) {
  std::size_t e = pos;
  while (e > 0 && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  std::size_t b = e;
  bool expect_ident = true;
  while (b > 0) {
    const char c = s[b - 1];
    if (expect_ident) {
      if (c == ']') {
        int depth = 0;
        std::size_t j = b;
        while (j > 0) {
          --j;
          if (s[j] == ']') ++depth;
          if (s[j] == '[' && --depth == 0) break;
        }
        if (depth != 0) break;
        b = j;
        continue;
      }
      if (is_ident_char(c)) {
        while (b > 0 && is_ident_char(s[b - 1])) --b;
        expect_ident = false;
        continue;
      }
      break;
    }
    if (c == '.') {
      --b;
      expect_ident = true;
      continue;
    }
    if (c == '>' && b >= 2 && s[b - 2] == '-') {
      b -= 2;
      expect_ident = true;
      continue;
    }
    break;
  }
  if (expect_ident) return "";
  std::string out = s.substr(b, e - b);
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](char c) {
                             return std::isspace(static_cast<unsigned char>(c));
                           }),
            out.end());
  return out;
}

/// Splits a member-access chain "a.b->c" / "a[i]->b" into its identifier
/// components, dropping index suffixes and this->.
std::vector<std::string> chain_components(const std::string& expr) {
  std::vector<std::string> out;
  std::string cur;
  int bracket = 0;
  for (std::size_t i = 0; i < expr.size(); ++i) {
    const char c = expr[i];
    if (c == '[') ++bracket;
    if (c == ']') {
      bracket = std::max(0, bracket - 1);
      continue;
    }
    if (bracket > 0) continue;
    if (is_ident_char(c)) {
      cur.push_back(c);
      continue;
    }
    if (!cur.empty()) {
      out.push_back(cur);
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(cur);
  out.erase(std::remove(out.begin(), out.end(), std::string("this")),
            out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Context: merged lookups shared by the passes.
// ---------------------------------------------------------------------------

struct FnRef {
  std::size_t file = 0;
  std::size_t fn = 0;
};

struct Context {
  const ProjectModel& pm;
  const Options& opts;

  /// "Class::name" and "name" (free) -> definitions.
  std::map<std::string, std::vector<FnRef>> fn_table;
  /// unqualified class name -> merged method decls across all TUs.
  std::map<std::string, std::vector<const MethodDecl*>> decls_by_class;
  /// Functions whose merged decl/definition carries CDN_HOT.
  std::set<const Function*> hot_functions;
  /// Per class: member base names that receive a .reserve() call in any of
  /// the class's methods (any TU).
  std::map<std::string, std::set<std::string>> reserved_by_class;

  explicit Context(const ProjectModel& pm_in, const Options& opts_in)
      : pm(pm_in), opts(opts_in) {
    for (std::size_t fi = 0; fi < pm.files.size(); ++fi) {
      const FileModel& fm = pm.files[fi];
      for (const auto& cls : fm.classes) {
        auto& decls = decls_by_class[cls.name];
        for (const MethodDecl& d : cls.method_decls) decls.push_back(&d);
      }
      for (std::size_t ni = 0; ni < fm.functions.size(); ++ni) {
        const Function& fn = fm.functions[ni];
        const std::string key =
            fn.qual_class.empty() ? fn.name : fn.qual_class + "::" + fn.name;
        fn_table[key].push_back(FnRef{fi, ni});
      }
    }
    for (std::size_t fi = 0; fi < pm.files.size(); ++fi) {
      for (const Function& fn : pm.files[fi].functions) {
        if (is_hot(fn)) hot_functions.insert(&fn);
        if (fn.qual_class.empty()) continue;
        for (const CallSite& c : fn.calls) {
          if (c.name != "reserve" || c.receiver.empty()) continue;
          const auto comps = chain_components(c.receiver);
          if (!comps.empty()) {
            reserved_by_class[fn.qual_class].insert(comps.back());
          }
        }
      }
    }
  }

  [[nodiscard]] bool is_hot(const Function& fn) const {
    if (fn.hot) return true;
    if (fn.qual_class.empty()) return false;
    const auto it = decls_by_class.find(fn.qual_class);
    if (it == decls_by_class.end()) return false;
    for (const MethodDecl* d : it->second) {
      if (d->name == fn.name && d->hot) return true;
    }
    return false;
  }

  /// CDN_REQUIRES merged across TUs: a declaration in the header carries
  /// the attribute for the out-of-line definition.
  [[nodiscard]] std::vector<std::string> merged_entry_locks(
      const Function& fn) const {
    std::vector<std::string> locks = fn.entry_locks;
    if (!fn.qual_class.empty()) {
      const auto it = decls_by_class.find(fn.qual_class);
      if (it != decls_by_class.end()) {
        for (const MethodDecl* d : it->second) {
          if (d->name != fn.name) continue;
          for (const std::string& l : d->entry_locks) {
            if (std::find(locks.begin(), locks.end(), l) == locks.end()) {
              locks.push_back(l);
            }
          }
        }
      }
    }
    return locks;
  }

  [[nodiscard]] bool is_virtual_method(const std::string& cls,
                                       const std::string& name) const {
    const auto it = decls_by_class.find(cls);
    if (it == decls_by_class.end()) return false;
    for (const MethodDecl* d : it->second) {
      if (d->name == name && d->is_virtual) return true;
    }
    return false;
  }

  [[nodiscard]] const Member* find_member(const std::string& cls,
                                          const std::string& name) const {
    const auto range = pm.classes.equal_range(cls);
    for (auto it = range.first; it != range.second; ++it) {
      const Class& c = pm.files[it->second.first].classes[it->second.second];
      for (const Member& m : c.members) {
        if (m.name == name) return &m;
      }
    }
    return nullptr;
  }

  /// Resolves a receiver chain ("s.cache", "shard->mu") to the class of
  /// its final component's *owner* plus the final member, or to the class
  /// the whole chain denotes. Returns "" on any unresolved hop.
  [[nodiscard]] std::string resolve_chain_class(const Function& fn,
                                                const std::string& expr) const {
    const auto comps = chain_components(expr);
    if (comps.empty()) return "";
    std::string cls;
    const auto local = fn.locals.find(comps[0]);
    if (local != fn.locals.end()) {
      cls = pm.resolve_class(local->second);
    } else if (!fn.qual_class.empty() &&
               find_member(fn.qual_class, comps[0]) != nullptr) {
      cls = pm.resolve_class(find_member(fn.qual_class, comps[0])->type);
    } else {
      // Maybe the first component itself names a known class (statics).
      if (pm.find_class(comps[0]) != nullptr && comps.size() > 1) {
        cls = comps[0];
      }
    }
    for (std::size_t i = 1; i < comps.size() && !cls.empty(); ++i) {
      const Member* m = find_member(cls, comps[i]);
      cls = m != nullptr ? pm.resolve_class(m->type) : "";
    }
    return cls;
  }

  /// Canonical mutex identity for a lock expression in `fn`'s context:
  /// "OwnerQual::member". Falls back to a project-wide unique mutex-member
  /// lookup, then to a conservative "?::member" id so unresolved mutexes
  /// still participate in (and can only merge, never split) cycles.
  [[nodiscard]] std::string canon_mutex(const Function& fn,
                                        const std::string& expr) const {
    const auto comps = chain_components(expr);
    if (comps.empty()) return "?::" + trim(expr);
    const std::string& leaf = comps.back();
    if (comps.size() == 1) {
      if (!fn.qual_class.empty()) {
        const auto range = pm.classes.equal_range(fn.qual_class);
        for (auto it = range.first; it != range.second; ++it) {
          const Class& c =
              pm.files[it->second.first].classes[it->second.second];
          for (const Member& m : c.members) {
            if (m.name == leaf) return c.qual + "::" + leaf;
          }
        }
      }
    } else {
      // Owner = class of the second-to-last component.
      std::string owner_expr;
      for (std::size_t i = 0; i + 1 < comps.size(); ++i) {
        if (!owner_expr.empty()) owner_expr += ".";
        owner_expr += comps[i];
      }
      const std::string owner = resolve_chain_class(fn, owner_expr);
      if (!owner.empty()) {
        const auto range = pm.classes.equal_range(owner);
        for (auto it = range.first; it != range.second; ++it) {
          const Class& c =
              pm.files[it->second.first].classes[it->second.second];
          for (const Member& m : c.members) {
            if (m.name == leaf) return c.qual + "::" + leaf;
          }
        }
        return owner + "::" + leaf;
      }
    }
    const auto owners = pm.mutex_members.find(leaf);
    if (owners != pm.mutex_members.end() && owners->second.size() == 1) {
      return *owners->second.begin() + "::" + leaf;
    }
    return "?::" + leaf;
  }

  /// Resolves a call site to candidate function definitions. Virtual
  /// methods are an analysis boundary: resolved-virtual calls return {}.
  [[nodiscard]] std::vector<FnRef> resolve_call(const Function& fn,
                                                const CallSite& call) const {
    auto lookup = [&](const std::string& key) {
      const auto it = fn_table.find(key);
      return it != fn_table.end() ? it->second : std::vector<FnRef>{};
    };
    if (!call.qualifier.empty()) {
      return lookup(call.qualifier + "::" + call.name);
    }
    if (!call.receiver.empty()) {
      const std::string cls = resolve_chain_class(fn, call.receiver);
      if (cls.empty()) return {};
      if (is_virtual_method(cls, call.name)) return {};
      return lookup(cls + "::" + call.name);
    }
    if (!fn.qual_class.empty()) {
      if (is_virtual_method(fn.qual_class, call.name)) return {};
      auto refs = lookup(fn.qual_class + "::" + call.name);
      if (!refs.empty()) return refs;
    }
    auto free_refs = lookup(call.name);
    // Only follow unambiguous free functions.
    if (free_refs.size() == 1) return free_refs;
    return {};
  }
};

// ---------------------------------------------------------------------------
// Hot-span bookkeeping (shared by lock and purity passes).
// ---------------------------------------------------------------------------

/// Per-file predicate: is this 1-based line inside a hot function body or a
/// hot-begin/end comment region?
struct HotLines {
  std::vector<std::vector<std::pair<int, int>>> spans;  // per file index

  HotLines(const Context& ctx) {
    spans.resize(ctx.pm.files.size());
    for (std::size_t fi = 0; fi < ctx.pm.files.size(); ++fi) {
      const FileModel& fm = ctx.pm.files[fi];
      for (const Function& fn : fm.functions) {
        if (ctx.hot_functions.count(&fn) != 0) {
          spans[fi].emplace_back(fn.head_line, fn.end_line);
        }
      }
      for (const HotRegion& r : fm.hot_regions) {
        spans[fi].emplace_back(r.begin_line, r.end_line);
      }
    }
  }

  [[nodiscard]] bool hot(std::size_t file, int line) const {
    for (const auto& [b, e] : spans[file]) {
      if (line >= b && line <= e) return true;
    }
    return false;
  }
  [[nodiscard]] bool any(std::size_t file) const {
    return !spans[file].empty();
  }
};

// ---------------------------------------------------------------------------
// Pass (a): lock-order analysis.
// ---------------------------------------------------------------------------

struct Edge {
  std::string from;
  std::string to;
  std::string file;
  int line = 0;
};

struct AcqSite {
  std::string mutex;  // canonical id
  std::string file;
  int line = 0;
};

class LockPass {
 public:
  LockPass(const Context& ctx, const HotLines& hot) : ctx_(ctx), hot_(hot) {}

  void run(std::vector<Finding>* out) {
    for (std::size_t fi = 0; fi < ctx_.pm.files.size(); ++fi) {
      const FileModel& fm = ctx_.pm.files[fi];
      for (const Function& fn : fm.functions) {
        collect_function(fm, fi, fn);
      }
    }
    emit_cycles(out);
  }

 private:
  const Context& ctx_;
  const HotLines& hot_;
  std::map<std::pair<std::string, std::string>, Edge> edges_;
  std::map<const Function*, std::vector<AcqSite>> closure_;
  std::set<const Function*> in_progress_;
  std::vector<Finding> hot_findings_;

  void add_edge(const std::string& from, const std::string& to,
                const std::string& file, int line) {
    const auto key = std::make_pair(from, to);
    const auto it = edges_.find(key);
    // Keep the lexically smallest witness per edge for determinism.
    if (it == edges_.end() || std::tie(file, line) <
                                  std::tie(it->second.file, it->second.line)) {
      edges_[key] = Edge{from, to, file, line};
    }
  }

  /// All mutexes `fn` may acquire, directly or through resolved calls.
  const std::vector<AcqSite>& acquisition_closure(const FnRef& ref) {
    const FileModel& fm = ctx_.pm.files[ref.file];
    const Function& fn = fm.functions[ref.fn];
    const auto cached = closure_.find(&fn);
    if (cached != closure_.end()) return cached->second;
    if (in_progress_.count(&fn) != 0) {
      static const std::vector<AcqSite> kEmpty;
      return kEmpty;  // recursion guard
    }
    in_progress_.insert(&fn);
    std::vector<AcqSite> acq;
    std::set<std::string> seen;
    for (const LockSite& site : fn.locks) {
      const std::string id = ctx_.canon_mutex(fn, site.expr);
      if (seen.insert(id).second) {
        acq.push_back(AcqSite{id, fm.path, site.line});
      }
    }
    for (const CallSite& call : fn.calls) {
      for (const FnRef& callee : ctx_.resolve_call(fn, call)) {
        for (const AcqSite& a : acquisition_closure(callee)) {
          if (seen.insert(a.mutex).second) {
            // Witness the caller's call site, not the callee's body: the
            // cycle is actionable where the nested acquisition begins.
            acq.push_back(AcqSite{a.mutex, fm.path, call.line});
          }
        }
      }
    }
    in_progress_.erase(&fn);
    return closure_.emplace(&fn, std::move(acq)).first->second;
  }

  void collect_function(const FileModel& fm, std::size_t fi,
                        const Function& fn) {
    const std::vector<std::string> entry = ctx_.merged_entry_locks(fn);
    std::vector<std::string> extra;  // REQUIRES seen only on the decl
    for (const std::string& l : entry) {
      if (std::find(fn.entry_locks.begin(), fn.entry_locks.end(), l) ==
          fn.entry_locks.end()) {
        extra.push_back(l);
      }
    }
    auto held_ids = [&](const std::vector<std::string>& held) {
      std::set<std::string> ids;
      for (const std::string& h : held) ids.insert(ctx_.canon_mutex(fn, h));
      for (const std::string& h : extra) ids.insert(ctx_.canon_mutex(fn, h));
      return ids;
    };
    for (const LockSite& site : fn.locks) {
      const std::string to = ctx_.canon_mutex(fn, site.expr);
      for (const std::string& from : held_ids(site.held)) {
        add_edge(from, to, fm.path, site.line);
      }
      if (hot_.hot(fi, site.line)) {
        hot_findings_.push_back(Finding{
            fm.path, site.line, Rule::kLockInHot,
            "lock acquisition of '" + site.expr +
                "' inside a hot region; hot paths must stay lock-free "
                "(hoist the lock outside the region or shard the state)"});
      }
    }
    for (const CallSite& call : fn.calls) {
      const std::set<std::string> held = held_ids(call.held);
      if (held.empty()) continue;
      for (const FnRef& callee : ctx_.resolve_call(fn, call)) {
        for (const AcqSite& a : acquisition_closure(callee)) {
          for (const std::string& from : held) {
            add_edge(from, a.mutex, fm.path, call.line);
          }
        }
      }
    }
  }

  void emit_cycles(std::vector<Finding>* out) {
    // Adjacency over canonical mutex ids.
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto& [key, edge] : edges_) {
      (void)edge;
      adj[key.first].push_back(key.second);
      adj.try_emplace(key.second);
    }
    // Tarjan SCC (iterative enough at this scale to recurse).
    std::map<std::string, int> index, low;
    std::vector<std::string> stack;
    std::set<std::string> on_stack;
    std::vector<std::vector<std::string>> sccs;
    int next = 0;
    std::function<void(const std::string&)> strongconnect =
        [&](const std::string& v) {
          index[v] = low[v] = next++;
          stack.push_back(v);
          on_stack.insert(v);
          for (const std::string& w : adj[v]) {
            if (index.find(w) == index.end()) {
              strongconnect(w);
              low[v] = std::min(low[v], low[w]);
            } else if (on_stack.count(w) != 0) {
              low[v] = std::min(low[v], index[w]);
            }
          }
          if (low[v] == index[v]) {
            std::vector<std::string> scc;
            while (true) {
              const std::string w = stack.back();
              stack.pop_back();
              on_stack.erase(w);
              scc.push_back(w);
              if (w == v) break;
            }
            sccs.push_back(std::move(scc));
          }
        };
    for (const auto& [v, nbrs] : adj) {
      (void)nbrs;
      if (index.find(v) == index.end()) strongconnect(v);
    }

    for (std::vector<std::string>& scc : sccs) {
      std::sort(scc.begin(), scc.end());
      const bool self_loop =
          scc.size() == 1 && edges_.count({scc[0], scc[0]}) != 0;
      if (scc.size() < 2 && !self_loop) continue;
      // Witness edges inside the SCC, lexically smallest first.
      const std::set<std::string> members(scc.begin(), scc.end());
      std::vector<const Edge*> witnesses;
      for (const auto& [key, edge] : edges_) {
        if (members.count(key.first) != 0 && members.count(key.second) != 0) {
          witnesses.push_back(&edge);
        }
      }
      std::sort(witnesses.begin(), witnesses.end(),
                [](const Edge* a, const Edge* b) {
                  return std::tie(a->file, a->line, a->from, a->to) <
                         std::tie(b->file, b->line, b->from, b->to);
                });
      std::ostringstream msg;
      if (self_loop) {
        msg << "lock-order cycle: '" << scc[0]
            << "' can be re-acquired while already held";
      } else {
        msg << "lock-order cycle among {";
        for (std::size_t i = 0; i < scc.size(); ++i) {
          msg << (i != 0 ? ", " : "") << scc[i];
        }
        msg << "}";
      }
      msg << "; acquisition edges:";
      for (const Edge* e : witnesses) {
        msg << " " << e->from << " -> " << e->to << " at " << e->file << ":"
            << e->line << ";";
      }
      msg << " a consistent acquisition order (or try_lock with backoff) "
             "is required";
      const Edge* anchor = witnesses.front();
      out->push_back(Finding{anchor->file, anchor->line,
                             Rule::kLockOrderCycle, msg.str()});
    }
    out->insert(out->end(), hot_findings_.begin(), hot_findings_.end());
  }
};

// ---------------------------------------------------------------------------
// Pass (b): hot-path purity.
// ---------------------------------------------------------------------------

class PurityPass {
 public:
  PurityPass(const Context& ctx, const HotLines& hot) : ctx_(ctx), hot_(hot) {}

  void run(std::vector<Finding>* out) {
    for (std::size_t fi = 0; fi < ctx_.pm.files.size(); ++fi) {
      if (!hot_.any(fi)) continue;
      const FileModel& fm = ctx_.pm.files[fi];
      scan_lines(fi, fm, out);
      scan_calls(fi, fm, out);
    }
  }

 private:
  const Context& ctx_;
  const HotLines& hot_;

  /// Container-growth receiver is fine if something with the same base
  /// name is .reserve()d in the enclosing class or function.
  [[nodiscard]] bool is_reserved(const FileModel& fm, int line,
                                 const std::string& receiver) const {
    const auto comps = chain_components(receiver);
    if (comps.empty()) return false;
    const std::string& base = comps.back();
    for (const Function& fn : fm.functions) {
      if (line < fn.head_line || line > fn.end_line) continue;
      for (const CallSite& c : fn.calls) {
        if (c.name != "reserve") continue;
        const auto rc = chain_components(c.receiver);
        if (!rc.empty() && rc.back() == base) return true;
      }
      if (!fn.qual_class.empty()) {
        const auto it = ctx_.reserved_by_class.find(fn.qual_class);
        if (it != ctx_.reserved_by_class.end() &&
            it->second.count(base) != 0) {
          return true;
        }
      }
    }
    return false;
  }

  void scan_lines(std::size_t fi, const FileModel& fm,
                  std::vector<Finding>* out) {
    static const std::regex kIo(
        R"(\b(cout|cerr|clog|printf|fprintf|fputs|puts|fopen|fwrite|fread|fscanf|ifstream|ofstream|fstream|getline)\b)");
    static const std::regex kAllocSimple(
        R"(\bnew\b|\bmake_unique\b|\bmake_shared\b|\bstd\s*::\s*to_string\s*\(|\bstd\s*::\s*string\s*\()");
    static const std::regex kGrow(
        R"(\.\s*(push_back|emplace_back|push_front|emplace_front|resize|assign|append)\s*\()");
    for (std::size_t li = 0; li < fm.view.code.size(); ++li) {
      const int line = static_cast<int>(li) + 1;
      if (!hot_.hot(fi, line)) continue;
      const std::string& code = fm.view.code[li];
      std::smatch m;
      if (contains_word(code, "throw")) {
        out->push_back(Finding{
            fm.path, line, Rule::kThrowInHot,
            "'throw' inside a hot region; hot paths must be exception-free "
            "(return an error code or move validation outside the loop)"});
      }
      if (std::regex_search(code, m, kIo)) {
        out->push_back(Finding{
            fm.path, line, Rule::kIoInHot,
            "IO call '" + m.str() +
                "' inside a hot region; buffer results and emit them "
                "outside the loop"});
      }
      if (std::regex_search(code, m, kAllocSimple)) {
        out->push_back(Finding{
            fm.path, line, Rule::kAllocInHot,
            "allocation '" + trim(m.str()) +
                "' inside a hot region; pre-allocate outside the loop "
                "(slab/free-list) so the replay path stays malloc-free"});
      }
      for (auto it = std::sregex_iterator(code.begin(), code.end(), kGrow);
           it != std::sregex_iterator(); ++it) {
        const std::string receiver =
            receiver_before(code, static_cast<std::size_t>(it->position()));
        if (receiver.empty()) continue;
        if (is_reserved(fm, line, receiver)) continue;
        out->push_back(Finding{
            fm.path, line, Rule::kAllocInHot,
            "container growth '" + receiver + "." + (*it)[1].str() +
                "(...)' inside a hot region on a receiver that is never "
                ".reserve()d; reserve capacity up front or use the slab"});
      }
    }
  }

  void scan_calls(std::size_t fi, const FileModel& fm,
                  std::vector<Finding>* out) {
    for (const Function& fn : fm.functions) {
      for (const CallSite& call : fn.calls) {
        if (!hot_.hot(fi, call.line)) continue;
        std::string cls;
        if (!call.receiver.empty()) {
          cls = ctx_.resolve_chain_class(fn, call.receiver);
        } else if (call.qualifier.empty() && !fn.qual_class.empty()) {
          cls = fn.qual_class;  // implicit this->
        }
        if (cls.empty() || !ctx_.is_virtual_method(cls, call.name)) continue;
        out->push_back(Finding{
            fm.path, call.line, Rule::kVirtualInHot,
            "virtual call '" +
                (call.receiver.empty() ? call.name
                                       : call.receiver + "." + call.name) +
                "(...)' (resolves to " + cls + "::" + call.name +
                ") inside a hot region; devirtualize (template/CRTP or a "
                "direct call on the concrete type) or suppress with the "
                "measured cost"});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Pass (c): accounting contracts.
// ---------------------------------------------------------------------------

class AccountingPass {
 public:
  explicit AccountingPass(const Context& ctx) : ctx_(ctx) {}

  void run(std::vector<Finding>* out) {
    for (std::size_t fi = 0; fi < ctx_.pm.files.size(); ++fi) {
      const FileModel& fm = ctx_.pm.files[fi];
      for (const Class& cls : fm.classes) {
        check_class(fm, cls, out);
      }
    }
  }

 private:
  const Context& ctx_;

  /// Finds the metadata_bytes() definition for `cls`: inline (inside the
  /// class's line range in the same file) or out-of-line in any TU.
  const Function* find_definition(const FileModel& fm, const Class& cls,
                                  const FileModel** def_fm) const {
    for (const Function& fn : fm.functions) {
      if (fn.name == "metadata_bytes" && fn.qual_class == cls.name &&
          fn.head_line >= cls.begin_line && fn.end_line <= cls.end_line) {
        *def_fm = &fm;
        return &fn;
      }
    }
    const auto it = ctx_.fn_table.find(cls.name + "::metadata_bytes");
    if (it == ctx_.fn_table.end()) return nullptr;
    for (const FnRef& ref : it->second) {
      const FileModel& other = ctx_.pm.files[ref.file];
      const Function& fn = other.functions[ref.fn];
      // Skip inline definitions of same-named classes in other files.
      bool inside_foreign_class = false;
      for (const Class& oc : other.classes) {
        if (&oc != &cls && oc.name == cls.name &&
            fn.head_line >= oc.begin_line && fn.end_line <= oc.end_line) {
          inside_foreign_class = (&other != &fm);
        }
      }
      if (inside_foreign_class) continue;
      *def_fm = &other;
      return &fn;
    }
    return nullptr;
  }

  void check_class(const FileModel& fm, const Class& cls,
                   std::vector<Finding>* out) {
    bool declares = false;
    for (const MethodDecl& d : cls.method_decls) {
      if (d.name == "metadata_bytes") declares = true;
    }
    if (!declares) return;

    std::vector<const Member*> accountable;
    for (const Member& m : cls.members) {
      if (is_container_type(m.type)) {
        accountable.push_back(&m);
        continue;
      }
      const std::string mc = ctx_.pm.resolve_class(m.type);
      if (!mc.empty() && ctx_.pm.accounting_classes.count(mc) != 0) {
        accountable.push_back(&m);
      }
    }
    if (accountable.empty()) return;

    const FileModel* def_fm = nullptr;
    const Function* def = find_definition(fm, cls, &def_fm);
    if (def == nullptr) return;  // pure virtual / defaulted elsewhere

    std::string body;
    for (int li = def->head_line; li <= def->end_line; ++li) {
      const std::size_t idx = static_cast<std::size_t>(li - 1);
      if (idx < def_fm->view.code.size()) {
        body += def_fm->view.code[idx];
        body.push_back('\n');
      }
    }
    std::vector<std::string> missing;
    for (const Member* m : accountable) {
      if (!contains_word(body, m->name)) missing.push_back(m->name);
    }
    if (missing.empty()) return;
    std::ostringstream msg;
    msg << cls.name << "::metadata_bytes() does not reference member";
    msg << (missing.size() > 1 ? "s " : " ");
    for (std::size_t i = 0; i < missing.size(); ++i) {
      msg << (i != 0 ? ", " : "") << "'" << missing[i] << "'";
    }
    msg << "; charge its bytes in the sum or carry "
           "// detlint:allow(accounting, <why it is already counted>)";
    out->push_back(Finding{def_fm->path, def->head_line, Rule::kAccounting,
                           msg.str()});
  }
};

}  // namespace

std::vector<Finding> run_project_passes(const ProjectModel& pm,
                                        const Options& opts) {
  Context ctx(pm, opts);
  HotLines hot(ctx);
  std::vector<Finding> findings;
  LockPass(ctx, hot).run(&findings);
  PurityPass(ctx, hot).run(&findings);
  AccountingPass(ctx).run(&findings);

  // Apply per-line suppressions, then dedupe (a line inside two
  // overlapping hot spans must report once).
  std::map<std::string, std::size_t> file_index;
  for (std::size_t fi = 0; fi < pm.files.size(); ++fi) {
    file_index[pm.files[fi].path] = fi;
  }
  std::set<std::string> seen;
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    const auto it = file_index.find(f.file);
    if (it != file_index.end()) {
      const auto& allowed = pm.files[it->second].allowed;
      const std::size_t idx = static_cast<std::size_t>(f.line - 1);
      if (idx < allowed.size() && allowed[idx].count(rule_id(f.rule)) != 0) {
        continue;
      }
    }
    const std::string key =
        f.file + ":" + std::to_string(f.line) + ":" + rule_id(f.rule);
    if (!seen.insert(key).second) continue;
    kept.push_back(std::move(f));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line) < std::tie(b.file, b.line);
  });
  return kept;
}

}  // namespace cdn::detlint

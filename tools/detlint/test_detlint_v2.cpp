// Tests for the v2 cross-TU layer: the two-phase project scan (lock-order,
// hot-path purity, accounting), the tokenizer differential fixtures, the
// default directory excludes, SARIF output, and --fix round-trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "detlint.hpp"
#include "obs/json.hpp"

#ifndef DETLINT_TESTDATA_DIR
#error "build must define DETLINT_TESTDATA_DIR"
#endif

namespace cdn::detlint {
namespace {

namespace fs = std::filesystem;

/// Findings as (rule-id, line) pairs sorted by (file, line, rule) so the
/// pinned expectations below are order-independent.
std::vector<std::pair<std::string, int>> rule_lines(
    std::vector<Finding> findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return std::string(rule_id(a.rule)) < rule_id(b.rule);
            });
  std::vector<std::pair<std::string, int>> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.emplace_back(rule_id(f.rule), f.line);
  return out;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spit(const fs::path& path, const std::string& text) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  out << text;
  ASSERT_TRUE(out) << "cannot write " << path;
}

// ---- lock-order ----------------------------------------------------------

TEST(DetlintLockOrder, CycleAcrossTwoTranslationUnits) {
  // left.cpp takes left_ then right_; right.cpp takes right_ then left_.
  // Neither file is wrong alone — only the merged project model shows the
  // cycle, anchored at the lexically smallest witness edge.
  const auto findings =
      scan_project(DETLINT_TESTDATA_DIR, {"v2/lockcycle_bad"});
  EXPECT_EQ(rule_lines(findings),
            (std::vector<std::pair<std::string, int>>{
                {"lock-order-cycle", 8}}));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "v2/lockcycle_bad/left.cpp");
  // The message names the canonical per-class mutexes and both witnesses.
  EXPECT_NE(findings[0].message.find("PairBad::left_"), std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].message.find("PairBad::right_"), std::string::npos);
  EXPECT_NE(findings[0].message.find("right.cpp:8"), std::string::npos);
}

TEST(DetlintLockOrder, ConsistentOrderAcrossTUsIsClean) {
  const auto findings =
      scan_project(DETLINT_TESTDATA_DIR, {"v2/lockcycle_good"});
  EXPECT_TRUE(findings.empty()) << to_json(findings);
}

// ---- hot-path purity -----------------------------------------------------

TEST(DetlintHotPurity, EveryFamilyFiresAtPinnedLines) {
  // The CDN_HOT markers live on the declarations in pump.hpp; all five
  // findings land in pump.cpp, which carries no marker of its own — this
  // pins the cross-TU decl-to-definition hot transfer. cold_region() has
  // the same alloc/throw/IO body outside any hot region and contributes
  // nothing.
  const auto findings = scan_project(DETLINT_TESTDATA_DIR, {"v2/hot_bad"});
  EXPECT_EQ(rule_lines(findings),
            (std::vector<std::pair<std::string, int>>{
                {"virtual-in-hot", 9},
                {"lock-in-hot", 14},
                {"alloc-in-hot", 24},
                {"throw-in-hot", 28},
                {"io-in-hot", 29}}))
      << to_json(findings);
  for (const auto& f : findings) {
    EXPECT_EQ(f.file, "v2/hot_bad/pump.cpp");
  }
}

TEST(DetlintHotPurity, ReservedGrowthAndSuppressedVirtualAreClean) {
  // BufGood::fill is hot and grows v_, but BufGood::setup .reserve()s the
  // member, which exempts the growth; the virtual dispatch carries a
  // reasoned detlint:allow.
  const auto findings = scan_project(DETLINT_TESTDATA_DIR, {"v2/hot_good"});
  EXPECT_TRUE(findings.empty()) << to_json(findings);
}

// ---- accounting ----------------------------------------------------------

TEST(DetlintAccounting, UnreferencedMemberFiresOnceWaiverSilences) {
  // TableBad omits w_ from metadata_bytes() -> one finding at the
  // definition. TableGood references every member and TableWaived carries
  // a reasoned allow — same file, no further findings.
  const auto findings =
      scan_project(DETLINT_TESTDATA_DIR, {"v2/accounting"});
  EXPECT_EQ(rule_lines(findings),
            (std::vector<std::pair<std::string, int>>{{"accounting", 11}}))
      << to_json(findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "v2/accounting/table.hpp");
  EXPECT_NE(findings[0].message.find("'w_'"), std::string::npos)
      << findings[0].message;
}

// ---- tokenizer differentials ---------------------------------------------

TEST(DetlintTokenizer, TortureFixtureIsCompletelyClean) {
  // Raw strings (plain, custom-delimiter with a fake `)"` closer,
  // encoding-prefixed), a backslash-continued line comment, a block
  // comment, and digit separators — each hiding tokens that fire every v1
  // rule when live. Both scan layers must see zero findings.
  const auto findings = scan_project(DETLINT_TESTDATA_DIR, {"v2/tokenizer"});
  EXPECT_TRUE(findings.empty()) << to_json(findings);
}

TEST(DetlintTokenizer, SameTokenFiresOutsideTheRawString) {
  // The differential: one std::rand() inside a raw string, one live. Only
  // the live one may fire, and at its exact line.
  const auto findings = scan_source(
      "src/core/fixture.cpp",
      "const char* s = R\"(std::rand();)\";\n"
      "int f() { return std::rand(); }\n");
  EXPECT_EQ(rule_lines(findings),
            (std::vector<std::pair<std::string, int>>{{"raw-rng", 2}}));
}

TEST(DetlintTokenizer, ContinuedLineCommentSwallowsNextLine) {
  const auto findings = scan_source("src/core/fixture.cpp",
                                    "// comment continues \\\n"
                                    "std::rand();\n"
                                    "int g() { return std::rand(); }\n");
  EXPECT_EQ(rule_lines(findings),
            (std::vector<std::pair<std::string, int>>{{"raw-rng", 3}}));
}

// ---- default excludes ----------------------------------------------------

TEST(DetlintExcludes, BuildDirectoriesAreSkippedByDefault) {
  // exclude_tree/build/planted.cpp holds a raw-rng violation; the default
  // exclude list (build*, .git) must keep both scan layers from reading
  // it. Clearing the excludes surfaces it — proof the planted file is
  // really there and really bad.
  EXPECT_TRUE(scan_tree(DETLINT_TESTDATA_DIR, {"v2/exclude_tree"}).empty());
  EXPECT_TRUE(
      scan_project(DETLINT_TESTDATA_DIR, {"v2/exclude_tree"}).empty());

  Options opts;
  opts.exclude_dirs.clear();
  const auto findings =
      scan_tree(DETLINT_TESTDATA_DIR, {"v2/exclude_tree"}, opts);
  EXPECT_EQ(rule_lines(findings),
            (std::vector<std::pair<std::string, int>>{{"raw-rng", 4}}));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "v2/exclude_tree/build/planted.cpp");
}

// ---- SARIF ---------------------------------------------------------------

TEST(DetlintSarif, ReportParsesAndCarriesLevelsAndLocations) {
  const auto cycle =
      scan_project(DETLINT_TESTDATA_DIR, {"v2/lockcycle_bad"});
  ASSERT_EQ(cycle.size(), 1u);
  auto rng = scan_source("src/core/fixture.cpp",
                         "int f() { return std::rand(); }\n");
  ASSERT_EQ(rng.size(), 1u);
  std::vector<Finding> findings = cycle;
  findings.push_back(rng[0]);

  std::string error;
  const auto doc = cdn::obs::json::parse(to_sarif(findings), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->find("version")->as_string(), "2.1.0");
  const auto& run = doc->find("runs")->as_array()[0];
  EXPECT_EQ(run.find("tool")->find("driver")->find("name")->as_string(),
            "detlint");
  // The driver advertises every rule id, including the v2 passes.
  const auto& rules =
      run.find("tool")->find("driver")->find("rules")->as_array();
  bool has_lock_order = false;
  for (const auto& r : rules) {
    if (r.find("id")->as_string() == "lock-order-cycle")
      has_lock_order = true;
  }
  EXPECT_TRUE(has_lock_order);

  const auto& results = run.find("results")->as_array();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].find("ruleId")->as_string(), "lock-order-cycle");
  EXPECT_EQ(results[0].find("level")->as_string(), "error");
  EXPECT_EQ(results[1].find("ruleId")->as_string(), "raw-rng");
  EXPECT_EQ(results[1].find("level")->as_string(), "warning");
  const auto& loc = results[0]
                        .find("locations")
                        ->as_array()[0]
                        .find("physicalLocation");
  EXPECT_EQ(loc->find("artifactLocation")->find("uri")->as_string(),
            "v2/lockcycle_bad/left.cpp");
  EXPECT_EQ(loc->find("region")->find("startLine")->as_number(), 8);
}

// ---- --fix ---------------------------------------------------------------

TEST(DetlintFix, SuppressionAndPragmaFixesRoundTripIdempotently) {
  const fs::path root =
      fs::path(::testing::TempDir()) / "detlint_fix_roundtrip";
  fs::remove_all(root);
  spit(root / "src/core/widget.cpp",
       "// Uses the process-global generator on purpose.\n"
       "int widget_roll() { return std::rand(); }\n");
  spit(root / "src/core/widget.hpp",
       "// A header that forgot its include guard.\n"
       "int widget_roll();\n");

  auto findings = scan_project(root.string(), {"src"});
  ASSERT_EQ(rule_lines(findings),
            (std::vector<std::pair<std::string, int>>{
                {"raw-rng", 2}, {"pragma-once", 1}}))
      << to_json(findings);

  std::vector<std::string> fixed;
  EXPECT_EQ(apply_fixes(root.string(), findings, &fixed), 2);
  EXPECT_EQ(fixed, (std::vector<std::string>{"src/core/widget.cpp",
                                             "src/core/widget.hpp"}));

  // After the fix pass both files scan clean: the .cpp line gained a
  // trailing detlint:allow (with a TODO reason to force a human pass) and
  // the header gained #pragma once after its leading comment block.
  EXPECT_TRUE(scan_project(root.string(), {"src"}).empty());
  const std::string cpp_after = slurp(root / "src/core/widget.cpp");
  const std::string hpp_after = slurp(root / "src/core/widget.hpp");
  EXPECT_NE(cpp_after.find("// detlint:allow(raw-rng, TODO: justify)"),
            std::string::npos)
      << cpp_after;
  EXPECT_NE(hpp_after.find("forgot its include guard.\n#pragma once\n"),
            std::string::npos)
      << hpp_after;

  // Idempotency: a second fix pass has nothing to do and changes nothing.
  EXPECT_EQ(apply_fixes(root.string(),
                        scan_project(root.string(), {"src"}), &fixed),
            0);
  EXPECT_EQ(slurp(root / "src/core/widget.cpp"), cpp_after);
  EXPECT_EQ(slurp(root / "src/core/widget.hpp"), hpp_after);
  fs::remove_all(root);
}

TEST(DetlintFix, GraphFindingsAreNeverAutoFixed) {
  EXPECT_FALSE(rule_is_fixable(Rule::kLockOrderCycle));
  EXPECT_TRUE(rule_is_fixable(Rule::kRawRng));
  EXPECT_TRUE(rule_is_fixable(Rule::kPragmaOnce));
  EXPECT_TRUE(rule_is_fixable(Rule::kAllocInHot));
}

}  // namespace
}  // namespace cdn::detlint

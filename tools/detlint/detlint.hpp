// detlint — repo-specific determinism lint.
//
// The reproduction's tests pin MAB trajectories bit-for-bit
// (test_golden_master, test_sweep_determinism), so any code path that can
// read wall-clock time, platform entropy, or hash-order reaches straight
// into the golden masters. detlint is the static gate for those hazards:
// a lexical scanner (deliberately not a compiler plugin — it must stay
// trivial to build and fast enough to run as a ctest on every build) that
// walks src/, bench/ and tests/ and reports:
//
//   wall-clock      system_clock / time() / localtime / gettimeofday
//                   outside src/util/stopwatch (the one sanctioned shim)
//   raw-rng         std::rand / srand / random_device / random_shuffle
//                   outside src/util/rng (every component takes cdn::Rng)
//   unordered-iter  iteration over std::unordered_{map,set} variables in
//                   output-affecting modules (src/obs, src/sim,
//                   src/analysis) where hash order would leak into results
//   float-accum     order-sensitive float reductions (std::accumulate with
//                   a float init, std::reduce, std::transform_reduce) in
//                   metrics-aggregation modules
//   raw-mutex       std::mutex / std::lock_guard / std::unique_lock /
//                   std::scoped_lock / std::condition_variable outside
//                   src/util/ — all locking must go through the thread-
//                   safety-annotated cdn::Mutex / MutexLock / CondVar so
//                   clang's -Wthread-safety can check the protocol
//   pragma-once     headers missing `#pragma once`
//
// Suppressions: `// detlint:allow(rule-id)` (comma-separated list allowed)
// on the offending line or the line directly above silences the finding;
// each surviving suppression in the tree must carry a justification after
// the closing paren.
//
// Kept to C++17 on purpose so the tool builds on any toolchain the CI may
// pin, independent of the C++20 library targets.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace cdn::detlint {

enum class Rule {
  kWallClock,
  kRawRng,
  kUnorderedIter,
  kFloatAccum,
  kRawMutex,
  kPragmaOnce,
  // v2 cross-TU passes (see passes.hpp).
  kLockOrderCycle,
  kLockInHot,
  kAllocInHot,
  kThrowInHot,
  kVirtualInHot,
  kIoInHot,
  kAccounting,
};

/// Stable rule identifier used in reports, suppressions, and baselines.
const char* rule_id(Rule r);
std::optional<Rule> rule_from_id(const std::string& id);
const std::vector<Rule>& all_rules();
/// One-line description for --list-rules.
const char* rule_help(Rule r);

struct Finding {
  std::string file;  ///< path relative to the scan root
  int line = 0;      ///< 1-based
  Rule rule = Rule::kWallClock;
  std::string message;
};

struct Options {
  /// Path fragments exempt from wall-clock (the sanctioned clock shim).
  std::vector<std::string> wall_clock_exempt = {"src/util/stopwatch"};
  /// Path fragments exempt from raw-rng (the deterministic RNG itself).
  std::vector<std::string> raw_rng_exempt = {"src/util/rng"};
  /// Modules whose iteration order reaches simulator output.
  std::vector<std::string> ordered_output_modules = {"src/obs", "src/sim",
                                                     "src/analysis"};
  /// Modules that aggregate float metrics (ordering changes the bits).
  std::vector<std::string> float_accum_modules = {"src/obs", "src/ml",
                                                  "src/analysis"};
  /// Path fragments exempt from raw-mutex (the annotated wrappers
  /// themselves live here and must wrap the std types).
  std::vector<std::string> raw_mutex_exempt = {"src/util/"};
  /// Directory names pruned from tree scans, matched against each path
  /// component; a trailing '*' makes the match a prefix ("build*" prunes
  /// build, build-asan, build.release). Keeps stale build trees and VCS
  /// metadata under --root from being linted.
  std::vector<std::string> exclude_dirs = {"build*", ".git"};
};

/// Scans one translation unit. `rel_path` (relative to the scan root)
/// selects which rules apply; `text` is the file contents. Suppressed
/// findings are already removed.
std::vector<Finding> scan_source(const std::string& rel_path,
                                 const std::string& text,
                                 const Options& opts = Options());

/// Recursively scans C++ sources (.cpp/.cc/.hpp/.h) under root/<subdir>
/// for each subdir, in sorted path order. Throws std::runtime_error on IO
/// failure.
std::vector<Finding> scan_tree(const std::string& root,
                               const std::vector<std::string>& subdirs,
                               const Options& opts = Options());

/// Two-phase project scan: runs the v1 per-file rules on every file AND
/// the v2 cross-TU passes (lock-order, hot-path purity, accounting — see
/// passes.hpp) over the merged project model. This is what the CLI runs;
/// scan_tree stays v1-only for callers that want the lexical layer alone.
std::vector<Finding> scan_project(const std::string& root,
                                  const std::vector<std::string>& subdirs,
                                  const Options& opts = Options());

/// Machine-readable findings report (JSON array, stable field order).
std::string to_json(const std::vector<Finding>& findings);

/// SARIF 2.1.0 report (one run, one result per finding) for code-scanning
/// upload. Stable field order; level "error" for lock-order-cycle and
/// accounting, "warning" otherwise.
std::string to_sarif(const std::vector<Finding>& findings);

/// True when `--fix` can mechanically silence this rule with a single-line
/// edit (a trailing `// detlint:allow(...)` or a `#pragma once` insert).
/// Cross-TU graph findings (lock-order-cycle) are never auto-fixed.
bool rule_is_fixable(Rule r);

/// Applies mechanical fixes for `findings` to the files under `root`:
/// pragma-once inserts `#pragma once` after the leading comment block; all
/// other fixable rules append `// detlint:allow(<rule>, TODO: justify)` to
/// the offending line (merging into an existing allow list). Returns the
/// number of edits; fills `fixed_files` (sorted, unique) when non-null.
/// Idempotent: re-linting after a fix pass yields no fixable findings.
int apply_fixes(const std::string& root,
                const std::vector<Finding>& findings,
                std::vector<std::string>* fixed_files = nullptr);

/// Removes findings recorded in `baseline_json` (the ratchet: CI fails
/// only on findings NOT in the checked-in baseline). A baseline entry
/// matches on (file, rule, line). Returns std::nullopt and sets `error`
/// if the baseline does not parse.
std::optional<std::vector<Finding>> apply_baseline(
    std::vector<Finding> findings, const std::string& baseline_json,
    std::string* error);

}  // namespace cdn::detlint

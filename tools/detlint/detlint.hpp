// detlint — repo-specific determinism lint.
//
// The reproduction's tests pin MAB trajectories bit-for-bit
// (test_golden_master, test_sweep_determinism), so any code path that can
// read wall-clock time, platform entropy, or hash-order reaches straight
// into the golden masters. detlint is the static gate for those hazards:
// a lexical scanner (deliberately not a compiler plugin — it must stay
// trivial to build and fast enough to run as a ctest on every build) that
// walks src/, bench/ and tests/ and reports:
//
//   wall-clock      system_clock / time() / localtime / gettimeofday
//                   outside src/util/stopwatch (the one sanctioned shim)
//   raw-rng         std::rand / srand / random_device / random_shuffle
//                   outside src/util/rng (every component takes cdn::Rng)
//   unordered-iter  iteration over std::unordered_{map,set} variables in
//                   output-affecting modules (src/obs, src/sim,
//                   src/analysis) where hash order would leak into results
//   float-accum     order-sensitive float reductions (std::accumulate with
//                   a float init, std::reduce, std::transform_reduce) in
//                   metrics-aggregation modules
//   raw-mutex       std::mutex / std::lock_guard / std::unique_lock /
//                   std::scoped_lock / std::condition_variable outside
//                   src/util/ — all locking must go through the thread-
//                   safety-annotated cdn::Mutex / MutexLock / CondVar so
//                   clang's -Wthread-safety can check the protocol
//   pragma-once     headers missing `#pragma once`
//
// Suppressions: `// detlint:allow(rule-id)` (comma-separated list allowed)
// on the offending line or the line directly above silences the finding;
// each surviving suppression in the tree must carry a justification after
// the closing paren.
//
// Kept to C++17 on purpose so the tool builds on any toolchain the CI may
// pin, independent of the C++20 library targets.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace cdn::detlint {

enum class Rule {
  kWallClock,
  kRawRng,
  kUnorderedIter,
  kFloatAccum,
  kRawMutex,
  kPragmaOnce,
};

/// Stable rule identifier used in reports, suppressions, and baselines.
const char* rule_id(Rule r);
std::optional<Rule> rule_from_id(const std::string& id);
const std::vector<Rule>& all_rules();
/// One-line description for --list-rules.
const char* rule_help(Rule r);

struct Finding {
  std::string file;  ///< path relative to the scan root
  int line = 0;      ///< 1-based
  Rule rule = Rule::kWallClock;
  std::string message;
};

struct Options {
  /// Path fragments exempt from wall-clock (the sanctioned clock shim).
  std::vector<std::string> wall_clock_exempt = {"src/util/stopwatch"};
  /// Path fragments exempt from raw-rng (the deterministic RNG itself).
  std::vector<std::string> raw_rng_exempt = {"src/util/rng"};
  /// Modules whose iteration order reaches simulator output.
  std::vector<std::string> ordered_output_modules = {"src/obs", "src/sim",
                                                     "src/analysis"};
  /// Modules that aggregate float metrics (ordering changes the bits).
  std::vector<std::string> float_accum_modules = {"src/obs", "src/ml",
                                                  "src/analysis"};
  /// Path fragments exempt from raw-mutex (the annotated wrappers
  /// themselves live here and must wrap the std types).
  std::vector<std::string> raw_mutex_exempt = {"src/util/"};
};

/// Scans one translation unit. `rel_path` (relative to the scan root)
/// selects which rules apply; `text` is the file contents. Suppressed
/// findings are already removed.
std::vector<Finding> scan_source(const std::string& rel_path,
                                 const std::string& text,
                                 const Options& opts = Options());

/// Recursively scans C++ sources (.cpp/.cc/.hpp/.h) under root/<subdir>
/// for each subdir, in sorted path order. Throws std::runtime_error on IO
/// failure.
std::vector<Finding> scan_tree(const std::string& root,
                               const std::vector<std::string>& subdirs,
                               const Options& opts = Options());

/// Machine-readable findings report (JSON array, stable field order).
std::string to_json(const std::vector<Finding>& findings);

/// Removes findings recorded in `baseline_json` (the ratchet: CI fails
/// only on findings NOT in the checked-in baseline). A baseline entry
/// matches on (file, rule, line). Returns std::nullopt and sets `error`
/// if the baseline does not parse.
std::optional<std::vector<Finding>> apply_baseline(
    std::vector<Finding> findings, const std::string& baseline_json,
    std::string* error);

}  // namespace cdn::detlint

// Fixture: every wall-clock hazard detlint must catch. Never compiled.
#include <chrono>
#include <ctime>

long fixture_now_epoch() {
  auto tp = std::chrono::system_clock::now();  // line 6: system_clock
  (void)tp;
  std::time_t t = time(nullptr);  // line 8: time(
  std::tm* local = localtime(&t);  // line 9: localtime
  (void)local;
  return static_cast<long>(t);
}

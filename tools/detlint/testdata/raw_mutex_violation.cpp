// Fixture: raw std locking primitives outside src/util/ (raw-mutex).
// Expected findings are pinned by test_detlint: lines 6, 9 and 10.
// NOLINTBEGIN
#include <mutex>

static std::mutex fixture_mu;

int locked_get(int* p) {
  std::lock_guard<std::mutex> lk(fixture_mu);
  std::unique_lock<std::mutex> ul(fixture_mu, std::defer_lock);
  return *p;
}
// NOLINTEND

// Fixture: every violation here carries a detlint:allow suppression, so a
// scan must report zero findings. Never compiled.
#include <chrono>
#include <cstdlib>

long fixture_suppressed_clock() {
  // Same-line suppression:
  auto tp = std::chrono::system_clock::now();  // detlint:allow(wall-clock): fixture
  (void)tp;
  // Line-above suppression:
  // detlint:allow(raw-rng): fixture exercises the carry-down form
  int r = std::rand();
  // Comma-separated list:
  // detlint:allow(wall-clock, raw-rng): fixture exercises the list form
  return r + static_cast<long>(time(nullptr)) + std::rand();
}

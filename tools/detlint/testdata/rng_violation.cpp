// Fixture: every raw-RNG hazard detlint must catch. Never compiled.
#include <cstdlib>
#include <random>

int fixture_entropy() {
  std::random_device rd;  // line 6: random_device
  srand(rd());  // line 7: srand(
  return std::rand();  // line 8: std::rand
}

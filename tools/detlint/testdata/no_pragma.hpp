// Fixture: header deliberately missing `#pragma once`. Never compiled.
#ifndef DETLINT_TESTDATA_NO_PRAGMA_HPP
#define DETLINT_TESTDATA_NO_PRAGMA_HPP

inline int fixture_answer() { return 42; }

#endif  // DETLINT_TESTDATA_NO_PRAGMA_HPP

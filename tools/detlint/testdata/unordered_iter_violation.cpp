// Fixture: hash-order iteration in an output-affecting module. The test
// passes a module path (or module-scoped Options), so these fire; lookup
// and insertion below must NOT fire. Never compiled.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

struct FixtureExporter {
  std::unordered_map<std::uint64_t, double> scores_;
  std::unordered_set<std::uint64_t> seen;

  double fixture_sum() {
    double total = 0.0;
    for (const auto& [id, score] : scores_) {  // line 14: unordered-iter
      total += score;
    }
    for (auto it = seen.begin(); it != seen.end(); ++it) {  // line 17
      total += 1.0;
    }
    return total;
  }

  bool fixture_lookup(std::uint64_t id) {
    return scores_.find(id) != scores_.end();  // lookup: no finding
  }
};

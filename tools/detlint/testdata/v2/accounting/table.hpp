// Fixture: three accounting shapes. TableBad's metadata_bytes() never
// references w_, so the accounting contract fires on it. TableGood
// references every accountable member. TableWaived omits one but carries
// a reasoned suppression.
#pragma once

namespace cdn {

class TableBad {
 public:
  std::uint64_t metadata_bytes() const { return v_.size() * 8; }

 private:
  std::vector<int> v_;
  std::vector<int> w_;
};

class TableGood {
 public:
  std::uint64_t metadata_bytes() const {
    return v_.size() * 8 + w_.size() * 8;
  }

 private:
  std::vector<int> v_;
  std::vector<int> w_;
};

class TableWaived {
 public:
  // detlint:allow(accounting, fixture: w_ rides in v_'s per-entry constant)
  std::uint64_t metadata_bytes() const { return v_.size() * 16; }

 private:
  std::vector<int> v_;
  std::vector<int> w_;
};

}  // namespace cdn

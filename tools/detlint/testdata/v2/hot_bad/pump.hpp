// Fixture: CDN_HOT on a declaration must transfer to the out-of-line
// definition in pump.cpp, where the purity violations live.
#pragma once

namespace cdn {

class SinkBad {
 public:
  virtual ~SinkBad() = default;
  virtual void put(int v) = 0;
};

class PumpBad {
 public:
  CDN_HOT void drain(int n);
  CDN_HOT int peek();

 private:
  std::unique_ptr<SinkBad> sink_;
  Mutex mu_;
  int last_ = 0;
};

}  // namespace cdn

// Fixture: one violation per hot-purity rule family, each at a pinned
// line. The CDN_HOT markers sit on the declarations in pump.hpp only.
#include "pump.hpp"

namespace cdn {

void PumpBad::drain(int n) {
  for (int i = 0; i < n; ++i) {
    sink_->put(i);
  }
}

int PumpBad::peek() {
  MutexLock lk(mu_);
  return last_;
}

int free_helper();

// detlint:hot-begin
int hot_region(int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i) {
    int* p = new int(i);
    acc += *p;
    delete p;
  }
  if (acc < 0) throw acc;
  std::printf("%d\n", acc);
  return acc;
}
// detlint:hot-end

int cold_region(int n) {
  // Identical body outside any hot region: none of this may fire.
  int* p = new int(n);
  const int acc = *p;
  delete p;
  if (acc < 0) throw acc;
  std::printf("%d\n", acc);
  return acc;
}

}  // namespace cdn

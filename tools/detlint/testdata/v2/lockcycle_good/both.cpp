// Fixture: both paths honor the left_-before-right_ order; no cycle.
#include "pair.hpp"

namespace cdn {

void PairGood::increment() {
  MutexLock a(left_);
  MutexLock b(right_);
  ++value_;
}

void PairGood::decrement() {
  MutexLock a(left_);
  MutexLock b(right_);
  --value_;
}

}  // namespace cdn

// Fixture: the passing counterpart of lockcycle_bad — both TUs acquire
// the two mutexes in the same order, so the acquisition graph is acyclic.
#pragma once

namespace cdn {

class PairGood {
 public:
  void increment();
  void decrement();

 private:
  Mutex left_;
  Mutex right_;
  int value_ = 0;
};

}  // namespace cdn

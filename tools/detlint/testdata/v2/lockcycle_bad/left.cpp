// Fixture: acquires left_ before right_ (the other TU does the reverse).
#include "pair.hpp"

namespace cdn {

void PairBad::left_then_right() {
  MutexLock a(left_);
  MutexLock b(right_);
  ++value_;
}

}  // namespace cdn

// Fixture: acquires right_ before left_ (the other TU does the reverse).
#include "pair.hpp"

namespace cdn {

void PairBad::right_then_left() {
  MutexLock a(right_);
  MutexLock b(left_);
  --value_;
}

}  // namespace cdn

// Fixture: two mutexes acquired in opposite orders by two TUs. The class
// lives here; each ordering lives in its own .cpp so the cycle is only
// visible to the cross-TU lock-order pass, never to a per-file scan.
#pragma once

namespace cdn {

class PairBad {
 public:
  void left_then_right();
  void right_then_left();

 private:
  Mutex left_;
  Mutex right_;
  int value_ = 0;
};

}  // namespace cdn

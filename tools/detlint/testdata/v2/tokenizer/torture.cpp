// Fixture: tokenizer differential torture. Every banned token below sits
// inside a raw string, a continued line comment, or a block comment — the
// scan must report ZERO findings for this file under every rule, v1 and
// v2 alike.
namespace cdn {

// A raw string whose payload is wall-to-wall violations.
const char* kPayload = R"(std::mutex m; new int[8]; std::rand(); time(nullptr);)";

// Custom delimiter, spanning lines, holding more violations plus a fake
// closer `)"` that a naive scanner would treat as the end of the string.
const char* kMultiline = R"delim(
std::mt19937 rng(42);
auto t = std::chrono::system_clock::now();  )"
std::srand(7);
)delim";

// Encoding prefixes still introduce raw strings.
const char* kPrefixed = u8R"(std::timed_mutex tm; srand(1);)";

// A line comment continued by a trailing backslash: std::mutex mu; \
   std::rand(); new char[16]; time(nullptr); more of the same comment

/* Block comment with violations: std::recursive_mutex rm;
   new double[4]; std::random_device rd; clock(); */

// Digit separators must not confuse the scanner into resyncing mid-token.
constexpr long kBig = 1'000'000'000L;

// An ordinary string with an escaped quote, then real code after it — the
// scanner must still be in code mode here (this function must be seen).
const char* kEscaped = "not a raw string: \" std::mutex inside quotes ";

int touch() { return static_cast<int>(kBig); }

}  // namespace cdn

// Fixture: a planted violation under a build/ directory. The default
// exclude list must keep tree scans from ever reading this file; only a
// scan with the excludes cleared may report the raw-rng finding below.
int planted() { return std::rand(); }

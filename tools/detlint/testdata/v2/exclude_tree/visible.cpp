// Fixture: a clean file beside the excluded build/ directory, so a scan
// of exclude_tree visits at least one file either way.
int visible() { return 42; }

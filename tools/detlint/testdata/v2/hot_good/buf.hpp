// Fixture: the passing counterpart of hot_bad — hot code whose container
// growth is exempt because the class .reserve()s the member, plus a
// reasoned suppression for a deliberate virtual dispatch.
#pragma once

namespace cdn {

class SinkGood {
 public:
  virtual ~SinkGood() = default;
  virtual void put(int v) = 0;
};

class BufGood {
 public:
  void setup(int n);
  CDN_HOT void fill(int n);

 private:
  std::vector<int> v_;
  std::unique_ptr<SinkGood> sink_;
};

}  // namespace cdn

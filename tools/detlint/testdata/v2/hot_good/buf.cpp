// Fixture: hot growth on a reserved member is exempt; the virtual call
// carries a reasoned suppression. Scans clean under every pass.
#include "buf.hpp"

namespace cdn {

void BufGood::setup(int n) {
  v_.reserve(n);
}

void BufGood::fill(int n) {
  for (int i = 0; i < n; ++i) {
    v_.push_back(i);
    // detlint:allow(virtual-in-hot, fixture: dispatch cost measured and accepted)
    sink_->put(i);
  }
}

}  // namespace cdn

// Fixture: order-sensitive float reductions in an aggregation module.
// The int accumulate must NOT fire. Never compiled.
#include <numeric>
#include <vector>

double fixture_mean(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);  // line 7: float-accum
}

double fixture_unordered(const std::vector<double>& xs) {
  return std::reduce(xs.begin(), xs.end());  // line 11: float-accum
}

int fixture_count(const std::vector<int>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0);  // int fold: no finding
}

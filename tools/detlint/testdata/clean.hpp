// Fixture: fully clean header — mentions of hazards live only in comments
// and string literals, which the scanner must ignore (e.g. random_device,
// system_clock, localtime).
#pragma once

#include <string>

inline std::string fixture_prose() {
  return "uses no random_device or system_clock at runtime";
}

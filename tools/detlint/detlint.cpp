#include "detlint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "model.hpp"
#include "obs/json.hpp"
#include "passes.hpp"

namespace cdn::detlint {
namespace {

namespace fs = std::filesystem;
namespace json = cdn::obs::json;

bool path_matches_any(const std::string& rel,
                      const std::vector<std::string>& fragments) {
  for (const std::string& f : fragments) {
    if (rel.find(f) != std::string::npos) return true;
  }
  return false;
}

bool is_header(const std::string& rel) {
  return rel.size() >= 2 &&
         (rel.rfind(".hpp") == rel.size() - 4 ||
          rel.rfind(".h") == rel.size() - 2);
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// Collects identifiers declared in this file with an unordered container
// type, e.g. `std::unordered_map<K, V> index_;`. Template arguments are
// skipped with angle-bracket depth counting, so nested templates and
// commas are handled.
std::set<std::string> unordered_container_names(
    const std::vector<std::string>& code) {
  static const std::regex kDecl(R"(unordered_(map|set)\s*<)");
  std::set<std::string> names;
  for (const std::string& line : code) {
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kDecl);
         it != std::sregex_iterator(); ++it) {
      std::size_t pos = static_cast<std::size_t>(it->position()) +
                        it->length();  // just past the '<'
      int depth = 1;
      while (pos < line.size() && depth > 0) {
        if (line[pos] == '<') ++depth;
        if (line[pos] == '>') --depth;
        ++pos;
      }
      if (depth != 0) continue;  // declaration spans lines; skip
      while (pos < line.size() &&
             std::isspace(static_cast<unsigned char>(line[pos]))) {
        ++pos;
      }
      std::string name;
      while (pos < line.size() &&
             (std::isalnum(static_cast<unsigned char>(line[pos])) ||
              line[pos] == '_')) {
        name.push_back(line[pos++]);
      }
      while (pos < line.size() &&
             std::isspace(static_cast<unsigned char>(line[pos]))) {
        ++pos;
      }
      // Variable declarations end in ; = { ( — a bare `>` type in a
      // template parameter list or return type does not.
      if (!name.empty() && pos < line.size() &&
          (line[pos] == ';' || line[pos] == '=' || line[pos] == '{' ||
           line[pos] == '(')) {
        names.insert(name);
      }
    }
  }
  return names;
}

// Returns the identifier a range-for iterates, for `for (decl : expr)`
// forms where expr ends in an identifier (`m_`, `obj.m_`, `*p.m_`).
// Returns "" if the line is not a single-line range-for.
std::string range_for_target(const std::string& code) {
  static const std::regex kFor(R"(\bfor\s*\()");
  std::smatch fm;
  if (!std::regex_search(code, fm, kFor)) return "";
  const std::size_t open =
      static_cast<std::size_t>(fm.position()) + fm.length() - 1;
  int depth = 1;
  std::size_t colon = std::string::npos;
  std::size_t close = std::string::npos;
  for (std::size_t i = open + 1; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '(' || c == '[') ++depth;
    if (c == ')' || c == ']') {
      --depth;
      if (depth == 0) {
        close = i;
        break;
      }
    }
    if (c == ':' && depth == 1) {
      const bool dbl = (i + 1 < code.size() && code[i + 1] == ':') ||
                       (i > 0 && code[i - 1] == ':');
      if (!dbl && colon == std::string::npos) colon = i;
    }
  }
  if (colon == std::string::npos || close == std::string::npos) return "";
  const std::string expr = trim(code.substr(colon + 1, close - colon - 1));
  static const std::regex kTail(R"(([A-Za-z_]\w*)$)");
  std::smatch m;
  if (!std::regex_search(expr, m, kTail)) return "";
  return m[1].str();
}

struct RuleInfo {
  Rule rule;
  const char* id;
  const char* help;
};

const RuleInfo kRules[] = {
    {Rule::kWallClock, "wall-clock",
     "wall-clock time source outside src/util/stopwatch"},
    {Rule::kRawRng, "raw-rng",
     "non-deterministic RNG outside src/util/rng (use cdn::Rng)"},
    {Rule::kUnorderedIter, "unordered-iter",
     "iteration over std::unordered_{map,set} in an output-affecting module"},
    {Rule::kFloatAccum, "float-accum",
     "order-sensitive floating-point reduction in a metrics-aggregation "
     "module"},
    {Rule::kRawMutex, "raw-mutex",
     "raw std locking primitive outside src/util/ (use the annotated "
     "cdn::Mutex/MutexLock/CondVar)"},
    {Rule::kPragmaOnce, "pragma-once", "header missing '#pragma once'"},
    {Rule::kLockOrderCycle, "lock-order-cycle",
     "cycle in the cross-TU mutex acquisition-order graph (potential "
     "deadlock)"},
    {Rule::kLockInHot, "lock-in-hot",
     "lock acquisition inside an annotated hot region"},
    {Rule::kAllocInHot, "alloc-in-hot",
     "allocation (new/make_unique/string temporary/unreserved container "
     "growth) inside an annotated hot region"},
    {Rule::kThrowInHot, "throw-in-hot",
     "'throw' inside an annotated hot region"},
    {Rule::kVirtualInHot, "virtual-in-hot",
     "call resolving to a virtual method inside an annotated hot region"},
    {Rule::kIoInHot, "io-in-hot",
     "stream/stdio IO inside an annotated hot region"},
    {Rule::kAccounting, "accounting",
     "metadata_bytes() does not reference every container/slab member "
     "(accounting drift)"},
};

}  // namespace

const char* rule_id(Rule r) {
  for (const RuleInfo& info : kRules) {
    if (info.rule == r) return info.id;
  }
  return "unknown";
}

const char* rule_help(Rule r) {
  for (const RuleInfo& info : kRules) {
    if (info.rule == r) return info.help;
  }
  return "";
}

std::optional<Rule> rule_from_id(const std::string& id) {
  for (const RuleInfo& info : kRules) {
    if (id == info.id) return info.rule;
  }
  return std::nullopt;
}

const std::vector<Rule>& all_rules() {
  static const std::vector<Rule> rules = [] {
    std::vector<Rule> r;
    for (const RuleInfo& info : kRules) r.push_back(info.rule);
    return r;
  }();
  return rules;
}

std::vector<Finding> scan_source(const std::string& rel_path,
                                 const std::string& text,
                                 const Options& opts) {
  // v2: the shared phase-1 tokenizer (model.hpp) handles raw strings,
  // line-continued // comments, and digit separators that the v1 stripper
  // mis-lexed.
  const CodeView view = build_code_view(text);
  const std::vector<std::string>& raw = view.raw;
  const std::vector<std::string>& code = view.code;
  const std::vector<std::set<std::string>> allowed =
      allowed_rules_per_line(raw);

  std::vector<Finding> findings;
  auto emit = [&](int line, Rule rule, std::string message) {
    const std::size_t idx = static_cast<std::size_t>(line - 1);
    if (idx < allowed.size() && allowed[idx].count(rule_id(rule))) return;
    findings.push_back(Finding{rel_path, line, rule, std::move(message)});
  };

  static const std::regex kWallClock(
      R"(system_clock|\b(localtime|gmtime|gettimeofday)|\b(time|clock)\s*\()");
  static const std::regex kRawRng(
      R"(\bstd\s*::\s*rand\b|\bs?rand\s*\(|\brandom_device\b|\brandom_shuffle\b)");
  static const std::regex kFloatReduce(
      R"(std\s*::\s*(accumulate|reduce|transform_reduce)\s*\()");
  static const std::regex kFloatHint(R"(\bfloat\b|\bdouble\b|\d\.\d|\.\d+f)");
  static const std::regex kRawMutex(
      R"(std\s*::\s*((recursive_|timed_|shared_)?mutex|lock_guard|unique_lock|scoped_lock|condition_variable(_any)?)\b)");

  const bool wall_exempt = path_matches_any(rel_path, opts.wall_clock_exempt);
  const bool rng_exempt = path_matches_any(rel_path, opts.raw_rng_exempt);
  const bool mutex_exempt = path_matches_any(rel_path, opts.raw_mutex_exempt);
  const bool ordered_module =
      path_matches_any(rel_path, opts.ordered_output_modules);
  const bool accum_module =
      path_matches_any(rel_path, opts.float_accum_modules);

  const std::set<std::string> unordered_names =
      ordered_module ? unordered_container_names(code)
                     : std::set<std::string>();

  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    const int lineno = static_cast<int>(i) + 1;
    std::smatch m;

    if (!wall_exempt && std::regex_search(line, m, kWallClock)) {
      emit(lineno, Rule::kWallClock,
           "wall-clock time source '" + trim(m.str()) +
               "' outside src/util/stopwatch; results must not depend on "
               "when they run (use cdn::Stopwatch for measurement only)");
    }
    if (!rng_exempt && std::regex_search(line, m, kRawRng)) {
      emit(lineno, Rule::kRawRng,
           "non-deterministic RNG '" + trim(m.str()) +
               "' outside src/util/rng; take an explicit cdn::Rng so runs "
               "are bit-reproducible");
    }
    if (!mutex_exempt && std::regex_search(line, m, kRawMutex)) {
      emit(lineno, Rule::kRawMutex,
           "raw locking primitive '" + trim(m.str()) +
               "' outside src/util/; use cdn::Mutex/MutexLock/CondVar "
               "(util/mutex.hpp) so -Wthread-safety can check the locking "
               "protocol");
    }
    if (accum_module && std::regex_search(line, m, kFloatReduce)) {
      const bool is_accumulate = m[1].str() == "accumulate";
      // std::accumulate is order-defined but still flagged when it folds
      // floats (refactors that parallelize it change the bits silently);
      // std::reduce / transform_reduce are unordered by spec.
      std::string window = line;
      for (std::size_t j = i + 1; j < code.size() && j <= i + 2; ++j) {
        window += code[j];
      }
      if (!is_accumulate || std::regex_search(window, kFloatHint)) {
        emit(lineno, Rule::kFloatAccum,
             "'std::" + m[1].str() +
                 "' over floating-point data in an aggregation module; "
                 "fold in a fixed-order loop so summation order is pinned");
      }
    }
    if (!unordered_names.empty()) {
      const std::string target = range_for_target(line);
      if (!target.empty() && unordered_names.count(target)) {
        emit(lineno, Rule::kUnorderedIter,
             "iteration over unordered container '" + target +
                 "' in an output-affecting module; hash order is not "
                 "deterministic across platforms — iterate a sorted view "
                 "or use an ordered container");
      } else {
        for (const std::string& name : unordered_names) {
          static const std::string kBegin = "begin";
          const std::size_t p = line.find(name + ".");
          if (p == std::string::npos) continue;
          const std::string rest = line.substr(p + name.size() + 1);
          if (rest.compare(0, kBegin.size(), kBegin) == 0 ||
              rest.compare(0, 1 + kBegin.size(), "c" + kBegin) == 0) {
            emit(lineno, Rule::kUnorderedIter,
                 "iterator over unordered container '" + name +
                     "' in an output-affecting module; hash order is not "
                     "deterministic across platforms");
            break;
          }
        }
      }
    }
  }

  if (is_header(rel_path)) {
    bool has_pragma = false;
    for (const std::string& line : raw) {
      if (trim(line) == "#pragma once") {
        has_pragma = true;
        break;
      }
    }
    if (!has_pragma) {
      emit(1, Rule::kPragmaOnce,
           "header is missing '#pragma once' (double inclusion breaks the "
           "single-definition assumptions in the policy registry)");
    }
  }

  return findings;
}

namespace {

/// One path component against the exclude list: exact match, or prefix
/// match when the exclude fragment ends with '*'.
bool component_excluded(const std::string& comp,
                        const std::vector<std::string>& excludes) {
  for (const std::string& ex : excludes) {
    if (!ex.empty() && ex.back() == '*') {
      const std::string prefix = ex.substr(0, ex.size() - 1);
      if (comp.compare(0, prefix.size(), prefix) == 0) return true;
    } else if (comp == ex) {
      return true;
    }
  }
  return false;
}

bool path_excluded(const fs::path& rel, const Options& opts) {
  for (const fs::path& comp : rel) {
    if (component_excluded(comp.string(), opts.exclude_dirs)) return true;
  }
  return false;
}

std::vector<std::string> list_sources(const std::string& root,
                                      const std::vector<std::string>& subdirs,
                                      const Options& opts) {
  std::vector<std::string> files;
  for (const std::string& sub : subdirs) {
    const fs::path dir = fs::path(root) / sub;
    if (!fs::exists(dir)) {
      throw std::runtime_error("detlint: no such directory: " + dir.string());
    }
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      const fs::path rel = fs::relative(it->path(), root);
      if (it->is_directory() && path_excluded(rel, opts)) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".cpp" && ext != ".cc" && ext != ".hpp" && ext != ".h") {
        continue;
      }
      if (path_excluded(rel, opts)) continue;
      files.push_back(rel.generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string read_file(const std::string& root, const std::string& rel) {
  std::ifstream in(fs::path(root) / rel, std::ios::binary);
  if (!in) throw std::runtime_error("detlint: cannot read " + rel);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

std::vector<Finding> scan_tree(const std::string& root,
                               const std::vector<std::string>& subdirs,
                               const Options& opts) {
  std::vector<Finding> findings;
  for (const std::string& rel : list_sources(root, subdirs, opts)) {
    std::vector<Finding> f = scan_source(rel, read_file(root, rel), opts);
    findings.insert(findings.end(), std::make_move_iterator(f.begin()),
                    std::make_move_iterator(f.end()));
  }
  return findings;
}

std::vector<Finding> scan_project(const std::string& root,
                                  const std::vector<std::string>& subdirs,
                                  const Options& opts) {
  ProjectModel pm;
  std::vector<Finding> findings;
  for (const std::string& rel : list_sources(root, subdirs, opts)) {
    const std::string text = read_file(root, rel);
    std::vector<Finding> f = scan_source(rel, text, opts);
    findings.insert(findings.end(), std::make_move_iterator(f.begin()),
                    std::make_move_iterator(f.end()));
    pm.add(build_file_model(rel, text));
  }
  pm.finalize();
  std::vector<Finding> v2 = run_project_passes(pm, opts);
  findings.insert(findings.end(), std::make_move_iterator(v2.begin()),
                  std::make_move_iterator(v2.end()));
  return findings;
}

std::string to_json(const std::vector<Finding>& findings) {
  json::Array arr;
  arr.reserve(findings.size());
  for (const Finding& f : findings) {
    json::Value row{json::Object{}};
    row.set("file", f.file);
    row.set("line", static_cast<std::int64_t>(f.line));
    row.set("rule", rule_id(f.rule));
    row.set("message", f.message);
    arr.push_back(std::move(row));
  }
  return json::Value(std::move(arr)).dump(2) + "\n";
}

std::string to_sarif(const std::vector<Finding>& findings) {
  json::Array rules;
  for (const Rule r : all_rules()) {
    json::Value rule{json::Object{}};
    rule.set("id", rule_id(r));
    json::Value desc{json::Object{}};
    desc.set("text", rule_help(r));
    rule.set("shortDescription", std::move(desc));
    rules.push_back(std::move(rule));
  }
  json::Value driver{json::Object{}};
  driver.set("name", "detlint");
  driver.set("informationUri",
             "tools/detlint — repo-specific determinism and hot-path lint");
  driver.set("rules", json::Value(std::move(rules)));
  json::Value tool{json::Object{}};
  tool.set("driver", std::move(driver));

  json::Array results;
  for (const Finding& f : findings) {
    json::Value result{json::Object{}};
    result.set("ruleId", rule_id(f.rule));
    result.set("level",
               (f.rule == Rule::kLockOrderCycle || f.rule == Rule::kAccounting)
                   ? "error"
                   : "warning");
    json::Value message{json::Object{}};
    message.set("text", f.message);
    result.set("message", std::move(message));
    json::Value artifact{json::Object{}};
    artifact.set("uri", f.file);
    json::Value region{json::Object{}};
    region.set("startLine", static_cast<std::int64_t>(f.line));
    json::Value physical{json::Object{}};
    physical.set("artifactLocation", std::move(artifact));
    physical.set("region", std::move(region));
    json::Value location{json::Object{}};
    location.set("physicalLocation", std::move(physical));
    json::Array locations;
    locations.push_back(std::move(location));
    result.set("locations", json::Value(std::move(locations)));
    results.push_back(std::move(result));
  }

  json::Value run{json::Object{}};
  run.set("tool", std::move(tool));
  run.set("results", json::Value(std::move(results)));
  json::Array runs;
  runs.push_back(std::move(run));
  json::Value doc{json::Object{}};
  doc.set("$schema",
          "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
          "Schemata/sarif-schema-2.1.0.json");
  doc.set("version", "2.1.0");
  doc.set("runs", json::Value(std::move(runs)));
  return doc.dump(2) + "\n";
}

bool rule_is_fixable(Rule r) { return r != Rule::kLockOrderCycle; }

namespace {

/// Appends `rule` to the line's trailing `// detlint:allow(...)` list, or
/// starts one. No-op if the list already carries the rule.
std::string with_suppression(const std::string& line, const std::string& rule) {
  static const std::string kMarker = "detlint:allow(";
  const std::size_t at = line.find(kMarker);
  if (at == std::string::npos) {
    return line + "  // detlint:allow(" + rule + ", TODO: justify)";
  }
  const std::size_t open = at + kMarker.size();
  const std::size_t close = line.find(')', open);
  const std::string args = close == std::string::npos
                               ? ""
                               : line.substr(open, close - open);
  std::stringstream ss(args);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (trim(tok) == rule) return line;  // already suppressed
  }
  return line.substr(0, open) + rule + ", " + line.substr(open);
}

}  // namespace

int apply_fixes(const std::string& root,
                const std::vector<Finding>& findings,
                std::vector<std::string>* fixed_files) {
  // Per file: line -> rules to suppress, plus pending pragma-once inserts.
  std::map<std::string, std::map<int, std::set<std::string>>> suppress;
  std::set<std::string> need_pragma;
  for (const Finding& f : findings) {
    if (!rule_is_fixable(f.rule)) continue;
    if (f.rule == Rule::kPragmaOnce) {
      need_pragma.insert(f.file);
    } else {
      suppress[f.file][f.line].insert(rule_id(f.rule));
    }
  }
  std::set<std::string> touched;
  for (const Finding& f : findings) {
    if (rule_is_fixable(f.rule)) touched.insert(f.file);
  }

  int edits = 0;
  for (const std::string& rel : touched) {
    const std::string text = read_file(root, rel);
    std::vector<std::string> lines;
    {
      std::string cur;
      for (const char c : text) {
        if (c == '\n') {
          lines.push_back(cur);
          cur.clear();
        } else if (c != '\r') {
          cur.push_back(c);
        }
      }
      if (!cur.empty()) lines.push_back(cur);
    }
    const auto per_line = suppress.find(rel);
    if (per_line != suppress.end()) {
      for (const auto& [line, rules] : per_line->second) {
        const std::size_t idx = static_cast<std::size_t>(line - 1);
        if (idx >= lines.size()) continue;
        for (const std::string& rule : rules) {
          const std::string fixed = with_suppression(lines[idx], rule);
          if (fixed != lines[idx]) {
            lines[idx] = fixed;
            ++edits;
          }
        }
      }
    }
    if (need_pragma.count(rel) != 0) {
      // Insert after the leading comment block. Applied last so the
      // line-anchored suppressions above used original numbering.
      std::size_t at = 0;
      while (at < lines.size()) {
        const std::string t = trim(lines[at]);
        if (t.empty() || t.compare(0, 2, "//") == 0) {
          ++at;
        } else {
          break;
        }
      }
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at),
                   "#pragma once");
      ++edits;
    }
    std::ofstream out(fs::path(root) / rel,
                      std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("detlint: cannot write " + rel);
    for (const std::string& line : lines) out << line << "\n";
    if (fixed_files) fixed_files->push_back(rel);
  }
  if (fixed_files) std::sort(fixed_files->begin(), fixed_files->end());
  return edits;
}

std::optional<std::vector<Finding>> apply_baseline(
    std::vector<Finding> findings, const std::string& baseline_json,
    std::string* error) {
  std::string parse_error;
  const std::optional<json::Value> doc =
      json::parse(baseline_json, &parse_error);
  if (!doc || !doc->is_array()) {
    if (error) {
      *error = doc ? "baseline is not a JSON array" : parse_error;
    }
    return std::nullopt;
  }
  std::set<std::string> keys;
  for (const json::Value& row : doc->as_array()) {
    const json::Value* file = row.find("file");
    const json::Value* line = row.find("line");
    const json::Value* rule = row.find("rule");
    if (!file || !line || !rule || !file->is_string() ||
        !line->is_number() || !rule->is_string()) {
      if (error) *error = "baseline entry missing file/line/rule";
      return std::nullopt;
    }
    keys.insert(file->as_string() + ":" +
                std::to_string(static_cast<long long>(line->as_number())) +
                ":" + rule->as_string());
  }
  findings.erase(
      std::remove_if(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       return keys.count(f.file + ":" +
                                         std::to_string(f.line) + ":" +
                                         rule_id(f.rule)) != 0;
                     }),
      findings.end());
  return findings;
}

}  // namespace cdn::detlint

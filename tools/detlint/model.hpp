// detlint phase 1: the per-file model.
//
// v1 detlint matched regexes against a comment/string-stripped view of each
// line in isolation. The v2 passes (lock-order graphs, hot-path purity,
// accounting contracts — see passes.hpp) need structure: which class a line
// belongs to, which members that class declares, where function bodies
// begin and end, which locks a statement acquires while which others are
// held. This header defines that structure and the single-pass heuristic
// parser that builds it.
//
// The parser is deliberately NOT a compiler frontend. It is a brace/paren
// tracking scanner over the tokenized code view, with the same design goal
// as v1: trivial to build (C++17, no deps beyond the repo's JSON reader),
// fast enough to run as a ctest on every build, and predictable enough
// that its blind spots are documentable (DESIGN.md §5i). Known
// approximations, each pinned by a fixture test:
//   * type resolution is name-based: a member expression `s.mu` resolves
//     through the declared type of `s` when the declaration is visible in
//     the same file, else through a project-wide unique-member-name lookup;
//   * virtual dispatch is an analysis boundary: calls through a receiver
//     whose resolved class declares the method `virtual` are reported to
//     the purity pass but never traversed by the lock pass;
//   * preprocessor lines (and their continuations) are skipped entirely.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace cdn::detlint {

// ---------------------------------------------------------------------------
// Tokenizer: the code view.
// ---------------------------------------------------------------------------

/// Line-preserving views of one translation unit. `code[i]` is `raw[i]`
/// with comments, string/char literals, and raw-string bodies blanked to
/// spaces (lengths preserved, so columns and line numbers stay aligned).
/// Handles: block comments spanning lines (non-nesting, as in C++), raw
/// strings `R"delim(...)delim"` spanning lines (including `u8R`/`LR`/...
/// prefixes), `//` comments continued by a trailing backslash, escape
/// sequences in ordinary literals, and digit separators (`1'000'000` is
/// not a character literal).
struct CodeView {
  std::vector<std::string> raw;
  std::vector<std::string> code;
};

CodeView build_code_view(const std::string& text);

/// Per-line suppression sets parsed from `// detlint:allow(a, b, why)`
/// comments in the raw text. Every comma-separated token is recorded; the
/// pass layer only consults tokens equal to real rule ids, so trailing
/// prose justifications are inert. A suppression covers its own line and
/// the line directly below.
std::vector<std::set<std::string>> allowed_rules_per_line(
    const std::vector<std::string>& raw);

// ---------------------------------------------------------------------------
// Structure: classes, members, functions, lock/call sites.
// ---------------------------------------------------------------------------

struct Member {
  std::string name;
  std::string type;  ///< declared type text as written (template args kept)
  int line = 0;      ///< 1-based declaration line
};

/// One lock acquisition inside a function body.
struct LockSite {
  std::string expr;    ///< mutex expression as written (e.g. "mu_", "s.mu")
  int line = 0;
  bool is_try = false;                  ///< via try_lock()
  std::vector<std::string> held;        ///< exprs already held at this site
};

/// One call site inside a function body.
struct CallSite {
  std::string name;      ///< callee name (unqualified)
  std::string qualifier; ///< "Class" for Class::name(...) calls, else ""
  std::string receiver;  ///< receiver token for x.name(...) / x->name(...)
  int line = 0;
  std::vector<std::string> held;  ///< mutex exprs held at this site
};

struct Function {
  std::string name;        ///< unqualified ("access_batch", "operator[]")
  std::string qual_class;  ///< enclosing or declarator class ("ShardedCache")
  int head_line = 0;       ///< line the signature's `{` closes on
  int begin_line = 0;      ///< first body line
  int end_line = 0;        ///< line of the closing `}`
  bool hot = false;        ///< CDN_HOT in the signature
  std::vector<std::string> entry_locks;  ///< CDN_REQUIRES/CDN_ACQUIRE args
  std::vector<LockSite> locks;
  std::vector<CallSite> calls;
  std::map<std::string, std::string> locals;  ///< name -> stripped type
};

/// A method *declaration* inside a class body (no body in this TU).
struct MethodDecl {
  std::string name;
  int line = 0;
  bool is_virtual = false;  ///< declared virtual / override / final
  bool hot = false;
  std::vector<std::string> entry_locks;  ///< CDN_REQUIRES on the declaration
};

struct Class {
  std::string name;  ///< unqualified ("Shard")
  std::string qual;  ///< nesting-qualified ("ShardedCache::Shard")
  int begin_line = 0;
  int end_line = 0;
  std::vector<Member> members;
  std::vector<MethodDecl> method_decls;
};

/// A `// detlint:hot-begin` .. `// detlint:hot-end` comment region, for
/// hot code in free functions (the replay loop) where no declaration can
/// carry the CDN_HOT marker.
struct HotRegion {
  int begin_line = 0;  ///< line of the hot-begin marker
  int end_line = 0;    ///< line of the hot-end marker (or last line)
};

struct FileModel {
  std::string path;
  CodeView view;
  std::vector<std::set<std::string>> allowed;  ///< per-line suppressions
  std::vector<Class> classes;
  std::vector<Function> functions;
  std::vector<HotRegion> hot_regions;
  std::map<std::string, std::string> aliases;  ///< using X = Y; / typedef
};

FileModel build_file_model(const std::string& rel_path,
                           const std::string& text);

// ---------------------------------------------------------------------------
// The merged project model (input to the phase-2 passes).
// ---------------------------------------------------------------------------

struct ProjectModel {
  std::vector<FileModel> files;

  // Merged lookup tables, built by finalize():
  /// unqualified class name -> (file index, class index); names declared in
  /// more than one file/class map to all occurrences.
  std::multimap<std::string, std::pair<std::size_t, std::size_t>> classes;
  /// method names declared virtual anywhere in the project.
  std::set<std::string> virtual_methods;
  /// unqualified class names that define or declare metadata_bytes().
  std::set<std::string> accounting_classes;
  /// mutex member name -> set of owning qualified class names ("Ns::C").
  std::map<std::string, std::set<std::string>> mutex_members;
  /// merged alias map (using X = Y) across all files.
  std::map<std::string, std::string> aliases;

  void add(FileModel fm);
  void finalize();

  /// Resolves a type name to a known class: strips qualifiers, template
  /// arguments, pointers/references, smart-pointer wrappers, and follows
  /// the alias map. Returns the unqualified class name or "".
  [[nodiscard]] std::string resolve_class(const std::string& type) const;
  [[nodiscard]] const Class* find_class(const std::string& unqual) const;
};

/// True when a type text names one of the dynamically-sized containers the
/// accounting pass charges for (std:: containers, FlatMap, and any project
/// class that itself participates in accounting).
bool is_container_type(const std::string& type);

/// Strips const/mutable/static/etc. qualifiers, template argument lists,
/// and reference/pointer sigils from a declared type, leaving the head
/// type name ("std::vector", "FlatMap", "Cache").
std::string strip_type(const std::string& type);

}  // namespace cdn::detlint

// Tests for the determinism lint: fixture files with known violations
// (rule ids + line numbers), suppression handling, baseline ratcheting,
// and CLI exit codes.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "detlint.hpp"
#include "obs/json.hpp"

#ifndef DETLINT_TESTDATA_DIR
#error "build must define DETLINT_TESTDATA_DIR"
#endif
#ifndef DETLINT_BIN
#error "build must define DETLINT_BIN"
#endif

namespace cdn::detlint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(DETLINT_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::pair<std::string, int>> rule_lines(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<std::string, int>> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.emplace_back(rule_id(f.rule), f.line);
  return out;
}

/// Runs the installed detlint binary and returns its exit code.
int run_detlint(const std::string& args) {
  const int status = std::system(
      (std::string(DETLINT_BIN) + " " + args + " >/dev/null 2>&1").c_str());
  EXPECT_NE(status, -1);
  return WEXITSTATUS(status);
}

TEST(DetlintRules, WallClockFindingsWithLines) {
  const auto findings =
      scan_source("src/core/fixture.cpp", read_fixture("wallclock_violation.cpp"));
  EXPECT_EQ(rule_lines(findings),
            (std::vector<std::pair<std::string, int>>{
                {"wall-clock", 6}, {"wall-clock", 8}, {"wall-clock", 9}}));
}

TEST(DetlintRules, WallClockExemptInsideStopwatch) {
  const auto findings = scan_source("src/util/stopwatch.cpp",
                                    read_fixture("wallclock_violation.cpp"));
  EXPECT_TRUE(findings.empty());
}

TEST(DetlintRules, RawRngFindingsWithLines) {
  const auto findings =
      scan_source("src/core/fixture.cpp", read_fixture("rng_violation.cpp"));
  EXPECT_EQ(rule_lines(findings),
            (std::vector<std::pair<std::string, int>>{
                {"raw-rng", 6}, {"raw-rng", 7}, {"raw-rng", 8}}));
}

TEST(DetlintRules, RawRngExemptInsideRngModule) {
  const auto findings =
      scan_source("src/util/rng.cpp", read_fixture("rng_violation.cpp"));
  EXPECT_TRUE(findings.empty());
}

TEST(DetlintRules, UnorderedIterOnlyInOutputModules) {
  const std::string text = read_fixture("unordered_iter_violation.cpp");
  // Outside the output-affecting modules: hash containers are fine.
  EXPECT_TRUE(scan_source("src/policies/fixture.cpp", text).empty());
  // Inside: both the range-for and the iterator loop fire; the find()
  // lookup does not.
  const auto findings = scan_source("src/obs/fixture.cpp", text);
  EXPECT_EQ(rule_lines(findings),
            (std::vector<std::pair<std::string, int>>{
                {"unordered-iter", 14}, {"unordered-iter", 17}}));
}

TEST(DetlintRules, RawMutexFindingsWithLines) {
  const auto findings = scan_source("src/srv/fixture.cpp",
                                    read_fixture("raw_mutex_violation.cpp"));
  EXPECT_EQ(rule_lines(findings),
            (std::vector<std::pair<std::string, int>>{
                {"raw-mutex", 6}, {"raw-mutex", 9}, {"raw-mutex", 10}}));
}

TEST(DetlintRules, RawMutexExemptInsideUtil) {
  const auto findings = scan_source("src/util/mutex.hpp",
                                    read_fixture("raw_mutex_violation.cpp"));
  // The annotated wrappers themselves must hold the raw std types; only
  // the pragma-once rule applies to the header path.
  EXPECT_EQ(rule_lines(findings), (std::vector<std::pair<std::string, int>>{
                                      {"pragma-once", 1}}));
}

TEST(DetlintRules, RawMutexDoesNotFlagCdnMutex) {
  const auto findings = scan_source(
      "src/srv/fixture.cpp",
      "cdn::Mutex mu_;\nvoid f() { cdn::MutexLock lk(mu_); }\n");
  EXPECT_TRUE(findings.empty()) << to_json(findings);
}

TEST(DetlintRules, FloatAccumFlagsFloatFoldsNotIntFolds) {
  const auto findings = scan_source("src/obs/fixture.cpp",
                                    read_fixture("float_accum_violation.cpp"));
  EXPECT_EQ(rule_lines(findings),
            (std::vector<std::pair<std::string, int>>{
                {"float-accum", 7}, {"float-accum", 11}}));
}

TEST(DetlintRules, PragmaOnceRequiredInHeaders) {
  const auto findings =
      scan_source("src/core/fixture.hpp", read_fixture("no_pragma.hpp"));
  EXPECT_EQ(rule_lines(findings), (std::vector<std::pair<std::string, int>>{
                                      {"pragma-once", 1}}));
  // The same contents as a .cpp file carry no pragma-once obligation.
  EXPECT_TRUE(
      scan_source("src/core/fixture.cpp", read_fixture("no_pragma.hpp"))
          .empty());
}

TEST(DetlintSuppression, AllowCommentsSilenceFindings) {
  const auto findings =
      scan_source("src/core/fixture.cpp", read_fixture("suppressed.cpp"));
  EXPECT_TRUE(findings.empty()) << to_json(findings);
}

TEST(DetlintSuppression, AllowOfOtherRuleDoesNotSilence) {
  const auto findings = scan_source(
      "src/core/fixture.cpp",
      "int f() { return std::rand(); }  // detlint:allow(wall-clock)\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(rule_id(findings[0].rule), std::string("raw-rng"));
}

TEST(DetlintScanner, CommentsAndStringsAreIgnored) {
  const auto findings =
      scan_source("src/core/fixture.hpp", read_fixture("clean.hpp"));
  EXPECT_TRUE(findings.empty()) << to_json(findings);
}

TEST(DetlintScanner, TreeScanIsSortedAndComplete) {
  Options opts;
  // Point the module-scoped rules at the fixture directory so every rule
  // participates in the tree scan.
  opts.ordered_output_modules = {"unordered_iter_violation"};
  opts.float_accum_modules = {"float_accum_violation"};
  const auto findings = scan_tree(DETLINT_TESTDATA_DIR, {"."}, opts);
  // 3 wall-clock + 3 raw-rng + 2 unordered-iter + 2 float-accum + 3
  // raw-mutex + 1 pragma-once; suppressed.cpp and clean.hpp contribute
  // nothing.
  EXPECT_EQ(findings.size(), 14u) << to_json(findings);
  for (std::size_t i = 1; i < findings.size(); ++i) {
    EXPECT_LE(findings[i - 1].file, findings[i].file);
  }
}

TEST(DetlintBaseline, BaselineRatchetsKnownFindings) {
  const std::string text = read_fixture("rng_violation.cpp");
  auto findings = scan_source("src/core/fixture.cpp", text);
  ASSERT_EQ(findings.size(), 3u);
  // Baseline the first two; only the third survives.
  const std::string baseline = to_json(
      std::vector<Finding>(findings.begin(), findings.begin() + 2));
  std::string error;
  const auto filtered = apply_baseline(findings, baseline, &error);
  ASSERT_TRUE(filtered.has_value()) << error;
  ASSERT_EQ(filtered->size(), 1u);
  EXPECT_EQ((*filtered)[0].line, 8);
}

TEST(DetlintBaseline, MalformedBaselineIsAnError) {
  std::string error;
  EXPECT_FALSE(apply_baseline({}, "{not json", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(DetlintJson, ReportRoundTripsThroughObsParser) {
  const auto findings =
      scan_source("src/core/fixture.cpp", read_fixture("rng_violation.cpp"));
  std::string error;
  const auto doc = cdn::obs::json::parse(to_json(findings), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_TRUE(doc->is_array());
  ASSERT_EQ(doc->as_array().size(), 3u);
  const auto& row = doc->as_array()[0];
  EXPECT_EQ(row.find("rule")->as_string(), "raw-rng");
  EXPECT_EQ(row.find("line")->as_number(), 6);
}

TEST(DetlintCli, ExitCodesReportViolationsAndBaseline) {
  const std::string root = std::string("--root ") + DETLINT_TESTDATA_DIR;
  // Fixtures contain violations: exit 1.
  EXPECT_EQ(run_detlint(root + " ."), 1);
  // A full baseline snapshot silences them: exit 0.
  const std::string baseline =
      ::testing::TempDir() + "/detlint_baseline.json";
  EXPECT_EQ(run_detlint(root + " --write-baseline " + baseline + " ."), 0);
  EXPECT_EQ(run_detlint(root + " --baseline " + baseline + " ."), 0);
  // Usage errors: exit 2.
  EXPECT_EQ(run_detlint("--root /nonexistent-detlint-dir ."), 2);
  EXPECT_EQ(run_detlint(""), 2);
}

}  // namespace
}  // namespace cdn::detlint

// detlint phase 2: cross-TU passes over the merged project model.
//
// Three pass families (ISSUE 8):
//
//   lock-order        Every MutexLock / .lock() / .try_lock() site is an
//                     acquisition; CDN_REQUIRES arguments (merged from
//                     declarations across TUs) are held on entry. Each
//                     acquisition with a non-empty held set contributes
//                     held -> acquired edges to the mutex-order graph;
//                     acquisitions also propagate through resolved,
//                     non-virtual calls (fixpoint closure). Any strongly
//                     connected component — including a self-loop, i.e. a
//                     re-acquisition — is a potential deadlock and fails
//                     as `lock-order-cycle`. Acquisitions lexically inside
//                     a hot region warn as `lock-in-hot`.
//
//   hot-path purity   Hot code is a function marked CDN_HOT (on either the
//                     declaration or the definition) or a
//                     `// detlint:hot-begin` .. `hot-end` comment region.
//                     Inside hot lines: `throw-in-hot`, `io-in-hot`
//                     (stream/stdio identifiers), `alloc-in-hot` (new,
//                     make_unique/make_shared, string temporaries, and
//                     growth calls — push_back/resize/... — on a receiver
//                     never .reserve()d in the same class or function),
//                     and `virtual-in-hot` (calls whose receiver resolves
//                     to a class declaring the method virtual). Analysis
//                     is lexical per line plus the model's call sites;
//                     callees of hot functions are NOT traversed — hotness
//                     does not propagate (documented boundary, DESIGN §5i).
//
//   accounting        Every class defining metadata_bytes() must reference
//                     each accountable member (std:: container, FlatMap /
//                     LruQueue / GhostList, or a member whose class itself
//                     defines metadata_bytes) by name inside the body, or
//                     the definition must carry
//                     `// detlint:allow(accounting, reason)`. This turns
//                     the PR 5/6 "forgot to charge a container" bug class
//                     into a lint failure.
#pragma once

#include <vector>

#include "detlint.hpp"
#include "model.hpp"

namespace cdn::detlint {

/// Runs all phase-2 passes. Findings already covered by a
/// `// detlint:allow(...)` suppression in the model are removed.
std::vector<Finding> run_project_passes(const ProjectModel& pm,
                                        const Options& opts);

}  // namespace cdn::detlint

#include "model.hpp"

#include <algorithm>
#include <cctype>
#include <regex>
#include <sstream>
#include <utility>

namespace cdn::detlint {
namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string collapse_ws(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  bool prev_space = false;
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!prev_space && !out.empty()) out.push_back(' ');
      prev_space = true;
    } else {
      out.push_back(c);
      prev_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

bool contains_word(const std::string& s, const std::string& w) {
  std::size_t pos = 0;
  while ((pos = s.find(w, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(s[pos - 1]);
    const std::size_t end = pos + w.size();
    const bool right_ok = end >= s.size() || !is_ident_char(s[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

CodeView build_code_view(const std::string& text) {
  CodeView view;
  {
    std::string cur;
    for (const char c : text) {
      if (c == '\n') {
        view.raw.push_back(cur);
        cur.clear();
      } else if (c != '\r') {
        cur.push_back(c);
      }
    }
    if (!cur.empty()) view.raw.push_back(std::move(cur));
  }

  enum class State { kCode, kBlockComment, kLineComment, kRawString };
  State state = State::kCode;
  std::string raw_close;  // ")delim\"" that terminates the raw string

  view.code.reserve(view.raw.size());
  for (const std::string& line : view.raw) {
    std::string code = line;
    std::size_t i = 0;
    // A // comment whose line ended in a backslash continues here.
    if (state == State::kLineComment) {
      const bool continues = !line.empty() && line.back() == '\\';
      for (char& c : code) c = ' ';
      if (!continues) state = State::kCode;
      view.code.push_back(std::move(code));
      continue;
    }
    while (i < code.size()) {
      if (state == State::kBlockComment) {
        // Block comments do not nest in C++: the first */ ends the comment
        // regardless of any /* seen inside it.
        if (code.compare(i, 2, "*/") == 0) {
          code[i] = ' ';
          code[i + 1] = ' ';
          i += 2;
          state = State::kCode;
        } else {
          code[i++] = ' ';
        }
        continue;
      }
      if (state == State::kRawString) {
        const std::size_t close = code.find(raw_close, i);
        if (close == std::string::npos) {
          for (std::size_t j = i; j < code.size(); ++j) code[j] = ' ';
          i = code.size();
        } else {
          for (std::size_t j = i; j < close + raw_close.size(); ++j) {
            code[j] = ' ';
          }
          i = close + raw_close.size();
          state = State::kCode;
        }
        continue;
      }
      const char c = code[i];
      if (c == '/' && i + 1 < code.size() && code[i + 1] == '/') {
        const bool continues = code.back() == '\\';
        for (std::size_t j = i; j < code.size(); ++j) code[j] = ' ';
        if (continues) state = State::kLineComment;
        break;
      }
      if (c == '/' && i + 1 < code.size() && code[i + 1] == '*') {
        code[i] = ' ';
        code[i + 1] = ' ';
        i += 2;
        state = State::kBlockComment;
        continue;
      }
      // Raw string: [u8|u|U|L] R"delim( ... )delim"
      if (c == 'R' && i + 1 < code.size() && code[i + 1] == '"') {
        const bool prefix_ok = [&] {
          std::size_t b = i;
          while (b > 0 && (code[b - 1] == 'u' || code[b - 1] == 'U' ||
                           code[b - 1] == 'L' || code[b - 1] == '8')) {
            --b;
          }
          return b == 0 || !is_ident_char(code[b - 1]);
        }();
        if (prefix_ok) {
          const std::size_t open = code.find('(', i + 2);
          if (open != std::string::npos) {
            const std::string delim = code.substr(i + 2, open - (i + 2));
            raw_close = ")" + delim + "\"";
            const std::size_t close = code.find(raw_close, open + 1);
            const std::size_t blank_end =
                close == std::string::npos ? code.size()
                                           : close + raw_close.size();
            for (std::size_t j = i; j < blank_end; ++j) code[j] = ' ';
            i = blank_end;
            if (close == std::string::npos) state = State::kRawString;
            continue;
          }
        }
      }
      if (c == '"' || c == '\'') {
        // Digit separator, not a char literal: 1'000'000.
        if (c == '\'' && i > 0 &&
            std::isdigit(static_cast<unsigned char>(code[i - 1])) &&
            i + 1 < code.size() && is_ident_char(code[i + 1])) {
          ++i;
          continue;
        }
        const char quote = c;
        std::size_t j = i + 1;
        while (j < code.size()) {
          if (code[j] == '\\' && j + 1 < code.size()) {
            code[j] = ' ';
            code[j + 1] = ' ';
            j += 2;
            continue;
          }
          if (code[j] == quote) break;
          code[j] = ' ';
          ++j;
        }
        i = (j < code.size()) ? j + 1 : j;
        continue;
      }
      ++i;
    }
    view.code.push_back(std::move(code));
  }
  return view;
}

std::vector<std::set<std::string>> allowed_rules_per_line(
    const std::vector<std::string>& raw) {
  static const std::regex kAllow(R"(detlint:allow\(([^)]*)\))");
  std::vector<std::set<std::string>> allowed(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(raw[i], m, kAllow)) continue;
    std::stringstream ss(m[1].str());
    std::string id;
    while (std::getline(ss, id, ',')) {
      id = trim(id);
      if (id.empty()) continue;
      allowed[i].insert(id);
      if (i + 1 < raw.size()) allowed[i + 1].insert(id);
    }
  }
  return allowed;
}

// ---------------------------------------------------------------------------
// Structure parser
// ---------------------------------------------------------------------------

namespace {

/// Strips CDN_* annotation macros and [[...]] attributes from a statement
/// or declarator head so name extraction sees only the declaration itself.
/// CDN_REQUIRES/CDN_ACQUIRE arguments must be captured *before* this runs.
std::string strip_annotations(std::string s) {
  static const std::regex kMacroCall(R"(\bCDN_[A-Z_]+\s*\([^)]*\))");
  static const std::regex kMacroBare(R"(\bCDN_[A-Z_]+\b)");
  static const std::regex kAttr(R"(\[\[[^\]]*\]\])");
  s = std::regex_replace(s, kMacroCall, " ");
  s = std::regex_replace(s, kAttr, " ");
  // CDN_HOT is semantically load-bearing for the model but syntactically
  // noise for name extraction; it is matched before this strip runs.
  s = std::regex_replace(s, kMacroBare, " ");
  return s;
}

std::vector<std::string> capture_requires(const std::string& head) {
  static const std::regex kReq(R"(\bCDN_REQUIRES\s*\(([^)]*)\))");
  std::vector<std::string> out;
  for (auto it = std::sregex_iterator(head.begin(), head.end(), kReq);
       it != std::sregex_iterator(); ++it) {
    std::stringstream ss((*it)[1].str());
    std::string arg;
    while (std::getline(ss, arg, ',')) {
      arg = trim(arg);
      if (!arg.empty()) out.push_back(arg);
    }
  }
  return out;
}

/// Walks backward from `pos` (exclusive) over a receiver expression chain:
/// identifiers joined by `.`, `->`, `::` and [...] index suffixes. Returns
/// the chain text ("s.cache", "shards_[i]->mu") or "".
std::string receiver_chain_before(const std::string& s, std::size_t pos) {
  std::size_t e = pos;
  while (e > 0 && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  std::size_t b = e;
  bool expect_ident = true;
  while (b > 0) {
    const char c = s[b - 1];
    if (expect_ident) {
      if (c == ']') {  // skip [...] back to the matching [
        int depth = 0;
        std::size_t j = b;
        while (j > 0) {
          --j;
          if (s[j] == ']') ++depth;
          if (s[j] == '[' && --depth == 0) break;
        }
        if (depth != 0) break;
        b = j;
        continue;
      }
      if (is_ident_char(c)) {
        while (b > 0 && is_ident_char(s[b - 1])) --b;
        expect_ident = false;
        continue;
      }
      break;
    }
    // After an identifier: accept a joining . / -> / :: and expect another.
    if (c == '.') {
      --b;
      expect_ident = true;
      continue;
    }
    if (c == '>' && b >= 2 && s[b - 2] == '-') {
      b -= 2;
      expect_ident = true;
      continue;
    }
    if (c == ':' && b >= 2 && s[b - 2] == ':') {
      b -= 2;
      expect_ident = true;
      continue;
    }
    break;
  }
  if (expect_ident) return "";  // dangling joiner; malformed
  return trim(s.substr(b, e - b));
}

const std::set<std::string>& call_keyword_blocklist() {
  static const std::set<std::string> kw = {
      "if",      "for",      "while",    "switch",   "catch",
      "return",  "sizeof",   "alignof",  "decltype", "noexcept",
      "assert",  "defined",  "co_await", "co_return", "throw",
      "static_assert"};
  return kw;
}

struct ScopeFrame {
  enum Kind { kNamespace, kClass, kFunction, kBlock };
  Kind kind = kBlock;
  int class_index = -1;  ///< valid for kClass
  int func_index = -1;   ///< valid for kFunction
  int saved_paren = 0;   ///< paren depth restored when this frame pops
  int open_line = 0;
  /// For expression-level braces (brace-init, default args `= {}`): the
  /// interrupted statement, restored when the block closes so the
  /// declaration keeps parsing (`LrbCache(LrbParams p = {}, ...);`).
  std::vector<std::pair<int, std::string>> saved_stmt;
};

struct Parser {
  FileModel& fm;
  std::vector<ScopeFrame> scopes;
  int paren_depth = 0;
  /// Statement text accumulated since the last `{` `}` `;` at paren depth
  /// 0, as (line, text) segments so sites anchor to their real line.
  std::vector<std::pair<int, std::string>> stmt;
  /// Active lock acquisitions of the innermost function: (expr, scope
  /// depth at acquisition). Popped when their scope closes.
  std::vector<std::pair<std::string, std::size_t>> lock_stack;

  [[nodiscard]] int innermost_function() const {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == ScopeFrame::kFunction) return it->func_index;
      if (it->kind == ScopeFrame::kClass) break;
    }
    return -1;
  }
  [[nodiscard]] int innermost_class() const {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == ScopeFrame::kClass) return it->class_index;
    }
    return -1;
  }
  [[nodiscard]] bool directly_in_class() const {
    return !scopes.empty() && scopes.back().kind == ScopeFrame::kClass;
  }

  [[nodiscard]] std::string joined_stmt() const {
    std::string s;
    for (const auto& seg : stmt) {
      s += seg.second;
      s.push_back(' ');
    }
    return collapse_ws(s);
  }

  [[nodiscard]] std::vector<std::string> held_exprs() const {
    std::vector<std::string> held;
    const int fi = innermost_function();
    if (fi >= 0) {
      held = fm.functions[static_cast<std::size_t>(fi)].entry_locks;
    }
    for (const auto& l : lock_stack) held.push_back(l.first);
    return held;
  }

  // -- statement-level scans (inside function bodies) ----------------------

  void scan_segment_locks(Function& fn, int line, const std::string& seg) {
    static const std::regex kGuard(R"(\bMutexLock\s+\w+\s*\(\s*([^)]+?)\s*\))");
    static const std::regex kLockCall(R"(\.\s*(try_lock|lock|unlock)\s*\()");
    for (auto it = std::sregex_iterator(seg.begin(), seg.end(), kGuard);
         it != std::sregex_iterator(); ++it) {
      LockSite site;
      site.expr = trim((*it)[1].str());
      site.line = line;
      site.held = held_exprs();
      fn.locks.push_back(site);
      lock_stack.emplace_back(site.expr, scopes.size());
    }
    for (auto it = std::sregex_iterator(seg.begin(), seg.end(), kLockCall);
         it != std::sregex_iterator(); ++it) {
      const std::string op = (*it)[1].str();
      const std::string expr =
          receiver_chain_before(seg, static_cast<std::size_t>(it->position()));
      if (expr.empty()) continue;
      if (op == "unlock") {
        for (auto l = lock_stack.rbegin(); l != lock_stack.rend(); ++l) {
          if (l->first == expr) {
            lock_stack.erase(std::next(l).base());
            break;
          }
        }
        continue;
      }
      LockSite site;
      site.expr = expr;
      site.line = line;
      site.is_try = op == "try_lock";
      site.held = held_exprs();
      fn.locks.push_back(site);
      lock_stack.emplace_back(expr, scopes.size());
    }
  }

  void scan_segment_calls(Function& fn, int line, const std::string& seg) {
    static const std::regex kCall(R"(([A-Za-z_]\w*)\s*\()");
    for (auto it = std::sregex_iterator(seg.begin(), seg.end(), kCall);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      if (call_keyword_blocklist().count(name) != 0) continue;
      if (name == "lock" || name == "try_lock" || name == "unlock") {
        continue;  // recorded as lock sites, not calls
      }
      std::size_t b = static_cast<std::size_t>(it->position());
      while (b > 0 && std::isspace(static_cast<unsigned char>(seg[b - 1]))) {
        --b;
      }
      CallSite site;
      site.name = name;
      site.line = line;
      if (b >= 1 && seg[b - 1] == '.') {
        site.receiver = receiver_chain_before(seg, b - 1);
        if (site.receiver.empty()) continue;
      } else if (b >= 2 && seg[b - 2] == '-' && seg[b - 1] == '>') {
        site.receiver = receiver_chain_before(seg, b - 2);
        if (site.receiver.empty()) continue;
      } else if (b >= 2 && seg[b - 2] == ':' && seg[b - 1] == ':') {
        std::string qual = receiver_chain_before(seg, b - 2);
        const std::size_t last = qual.rfind("::");
        site.qualifier = last == std::string::npos ? qual
                                                   : qual.substr(last + 2);
        if (site.qualifier.empty()) continue;
      } else if (b >= 1 && (is_ident_char(seg[b - 1]) || seg[b - 1] == '>' ||
                            seg[b - 1] == '&' || seg[b - 1] == '*' ||
                            seg[b - 1] == '~')) {
        // `Type name(...)`: a declaration, not a call. (Calls after a
        // keyword like `return` are re-admitted below.)
        std::size_t e = b;
        while (e > 0 && is_ident_char(seg[e - 1])) --e;
        const std::string prev = seg.substr(e, b - e);
        if (prev != "return" && prev != "else" && prev != "co_return") {
          continue;
        }
      }
      site.held = held_exprs();
      fn.calls.push_back(std::move(site));
    }
  }

  void scan_segment_locals(Function& fn, const std::string& seg) {
    // `Type name = ...` / `Type& name = ...` — enough to resolve receivers
    // like `Shard& s = *shards_[idx]`. `auto` stays unresolved by design.
    static const std::regex kLocal(
        R"((?:^|[;({]\s*|\bconst\s+)([A-Za-z_][\w:]*(?:<[^<>;=]*>)?)\s*[&*]?\s+([A-Za-z_]\w*)\s*=)");
    for (auto it = std::sregex_iterator(seg.begin(), seg.end(), kLocal);
         it != std::sregex_iterator(); ++it) {
      const std::string type = (*it)[1].str();
      const std::string name = (*it)[2].str();
      if (type == "auto" || type == "return") continue;
      if (fn.locals.find(name) == fn.locals.end()) {
        fn.locals[name] = strip_type(type);
      }
    }
  }

  void flush_statement_into_function() {
    const int fi = innermost_function();
    if (fi < 0) {
      scan_namespace_statement();
      return;
    }
    Function& fn = fm.functions[static_cast<std::size_t>(fi)];
    for (const auto& [line, seg] : stmt) {
      scan_segment_locks(fn, line, seg);
      scan_segment_calls(fn, line, seg);
      scan_segment_locals(fn, seg);
    }
  }

  // -- namespace/class scope statements ------------------------------------

  void scan_namespace_statement() {
    const std::string s = joined_stmt();
    record_alias(s);
  }

  void record_alias(const std::string& s) {
    static const std::regex kUsing(
        R"(\busing\s+([A-Za-z_]\w*)\s*=\s*([^;]+))");
    static const std::regex kTypedef(
        R"(\btypedef\s+(.+?)\s+([A-Za-z_]\w*)\s*$)");
    std::smatch m;
    if (std::regex_search(s, m, kUsing)) {
      fm.aliases[m[1].str()] = trim(m[2].str());
    } else if (std::regex_search(s, m, kTypedef)) {
      fm.aliases[m[2].str()] = trim(m[1].str());
    }
  }

  /// Extracts the declarator name before the first top-level '(' in a
  /// (annotation-stripped) head. Returns "" when there is none.
  static std::string declarator_name(const std::string& head,
                                     std::string* qual_out) {
    int angle = 0;
    for (std::size_t i = 0; i < head.size(); ++i) {
      const char c = head[i];
      if (c == '<') ++angle;
      if (c == '>' && angle > 0) --angle;
      if (c == '(' && angle == 0) {
        std::string chain = receiver_chain_before(head, i);
        if (chain.empty()) {
          // operator()/operator[] and friends.
          static const std::regex kOp(R"(\boperator\s*([^\s(]{0,2})\s*$)");
          std::smatch m;
          const std::string upto = head.substr(0, i);
          if (std::regex_search(upto, m, kOp)) {
            return "operator" + m[1].str();
          }
          return "";
        }
        const std::size_t sep = chain.rfind("::");
        if (sep != std::string::npos) {
          std::string qual = chain.substr(0, sep);
          // Out-of-line templates: FlatMap<K, V>::find -> FlatMap.
          const std::size_t lt = qual.find('<');
          if (lt != std::string::npos) qual = qual.substr(0, lt);
          const std::size_t qsep = qual.rfind("::");
          if (qual_out) {
            *qual_out =
                qsep == std::string::npos ? qual : qual.substr(qsep + 2);
          }
          return chain.substr(sep + 2);
        }
        // Plain `name(`: the name is the whole chain unless it contains
        // member access (then it is an expression, not a declarator).
        if (chain.find('.') != std::string::npos) return "";
        return chain;
      }
    }
    return "";
  }

  void parse_class_statement() {
    std::string s = joined_stmt();
    // Access specifiers ride along in the buffer; drop them, plus the
    // statement's own terminating semicolon.
    static const std::regex kAccess(R"(\b(public|private|protected)\s*:)");
    s = trim(std::regex_replace(s, kAccess, " "));
    while (!s.empty() && (s.back() == ';' || s.back() == ' ')) s.pop_back();
    if (s.empty()) return;
    if (contains_word(s, "friend") || contains_word(s, "static_assert")) {
      return;
    }
    if (contains_word(s, "using") || contains_word(s, "typedef")) {
      record_alias(s);
      return;
    }
    const int ci = innermost_class();
    if (ci < 0) return;
    Class& cls = fm.classes[static_cast<std::size_t>(ci)];
    const int line = stmt.empty() ? 0 : stmt.front().first;

    const std::vector<std::string> reqs = capture_requires(s);
    const bool hot = contains_word(s, "CDN_HOT");
    const bool is_virtual = contains_word(s, "virtual") ||
                            contains_word(s, "override") ||
                            contains_word(s, "final");
    const std::string stripped = collapse_ws(strip_annotations(s));

    std::string qual;
    const std::string fn_name = declarator_name(stripped, &qual);
    if (!fn_name.empty()) {
      MethodDecl decl;
      decl.name = fn_name;
      decl.line = line;
      decl.is_virtual = is_virtual;
      decl.hot = hot;
      decl.entry_locks = reqs;
      cls.method_decls.push_back(std::move(decl));
      return;
    }

    // Member declaration: cut default initializer / bitfield, then the
    // trailing identifier is the name and the rest is the type.
    std::string decl = stripped;
    int angle = 0;
    for (std::size_t i = 0; i < decl.size(); ++i) {
      const char c = decl[i];
      if (c == '<') ++angle;
      if (c == '>' && angle > 0) --angle;
      if (angle != 0) continue;
      if (c == '=' || c == '{') {
        decl = decl.substr(0, i);
        break;
      }
      if (c == ':' && (i + 1 >= decl.size() || decl[i + 1] != ':') &&
          (i == 0 || decl[i - 1] != ':')) {
        decl = decl.substr(0, i);  // bitfield
        break;
      }
    }
    decl = trim(decl);
    // Array suffix.
    const std::size_t bracket = decl.find('[');
    if (bracket != std::string::npos) decl = trim(decl.substr(0, bracket));
    std::size_t e = decl.size();
    while (e > 0 && is_ident_char(decl[e - 1])) --e;
    const std::string name = decl.substr(e);
    std::string type = trim(decl.substr(0, e));
    while (!type.empty() && (type.back() == '&' || type.back() == '*')) {
      type.pop_back();
      type = trim(type);
    }
    if (name.empty() || type.empty()) return;
    static const std::set<std::string> kNotTypes = {"return", "delete",
                                                   "default", "enum"};
    if (kNotTypes.count(type) != 0) return;
    Member member;
    member.name = name;
    member.type = type;  // full text: resolve_class needs template args
    member.line = line;
    cls.members.push_back(std::move(member));
  }

  // -- brace classification -------------------------------------------------

  void open_brace(int line) {
    ScopeFrame frame;
    frame.saved_paren = paren_depth;
    frame.open_line = line;

    const bool in_function = innermost_function() >= 0 &&
                             (scopes.empty() ||
                              scopes.back().kind != ScopeFrame::kClass);
    if (paren_depth > 0 || in_function) {
      // Lambda body, brace-init inside an expression, or a block inside a
      // function. Scan the pending statement first (control-flow headers:
      // `if (m.try_lock()) {`). Inside parens the statement is merely
      // interrupted — preserve it across the block.
      if (in_function && paren_depth == 0) flush_statement_into_function();
      frame.kind = ScopeFrame::kBlock;
      if (paren_depth > 0) frame.saved_stmt = std::move(stmt);
      scopes.push_back(std::move(frame));
      paren_depth = 0;
      stmt.clear();
      return;
    }

    std::string head = joined_stmt();
    const std::vector<std::string> reqs = capture_requires(head);
    const bool hot = contains_word(head, "CDN_HOT");
    const bool is_virtual = contains_word(head, "virtual") ||
                            contains_word(head, "override");
    head = collapse_ws(strip_annotations(head));

    if (contains_word(head, "namespace")) {
      frame.kind = ScopeFrame::kNamespace;
      scopes.push_back(frame);
      stmt.clear();
      return;
    }
    if (contains_word(head, "enum")) {
      frame.kind = ScopeFrame::kBlock;
      scopes.push_back(frame);
      stmt.clear();
      return;
    }
    const bool classish = contains_word(head, "class") ||
                          contains_word(head, "struct") ||
                          contains_word(head, "union");
    if (classish && head.find('(') == std::string::npos) {
      // Class name: last identifier before `final` / base clause / `{`.
      std::string h = head;
      static const std::regex kKw(R"(\b(class|struct|union)\b)");
      std::smatch m;
      std::string tail = h;
      for (auto it = std::sregex_iterator(h.begin(), h.end(), kKw);
           it != std::sregex_iterator(); ++it) {
        tail = h.substr(static_cast<std::size_t>(it->position()) +
                        it->length());
      }
      // Cut the base clause (single ':' at angle depth 0).
      int angle = 0;
      for (std::size_t i = 0; i < tail.size(); ++i) {
        if (tail[i] == '<') ++angle;
        if (tail[i] == '>' && angle > 0) --angle;
        if (angle != 0) continue;
        if (tail[i] == ':' && (i + 1 >= tail.size() || tail[i + 1] != ':') &&
            (i == 0 || tail[i - 1] != ':')) {
          tail = tail.substr(0, i);
          break;
        }
      }
      static const std::regex kFinal(R"(\bfinal\b)");
      tail = std::regex_replace(tail, kFinal, " ");
      tail = trim(tail);
      const std::size_t lt = tail.find('<');
      if (lt != std::string::npos) tail = trim(tail.substr(0, lt));
      std::size_t e = tail.size();
      while (e > 0 && is_ident_char(tail[e - 1])) --e;
      std::string name = tail.substr(e);
      if (name.empty()) name = "<anon>";

      Class cls;
      cls.name = name;
      const int outer = innermost_class();
      cls.qual = outer >= 0 ? fm.classes[static_cast<std::size_t>(outer)].qual +
                                  "::" + name
                            : name;
      cls.begin_line = line;
      frame.kind = ScopeFrame::kClass;
      frame.class_index = static_cast<int>(fm.classes.size());
      fm.classes.push_back(std::move(cls));
      scopes.push_back(frame);
      stmt.clear();
      return;
    }

    // Brace-init / aggregate: `= {`, `, {`, `( {`, or directly after an
    // identifier with no parameter list (`Request{}`). A head that ends in
    // an identifier but contains a top-level '(' is a function with
    // trailing qualifiers (`void f() const {`) and falls through.
    {
      std::string h = trim(head);
      if (!h.empty()) {
        const char last = h.back();
        if (last == '=' || last == ',' || last == '(' || last == '[' ||
            last == '<') {
          // Brace-init at class/namespace scope (member `= { ... }`): the
          // declaration continues after the closing brace.
          frame.kind = ScopeFrame::kBlock;
          frame.saved_stmt = std::move(stmt);
          scopes.push_back(std::move(frame));
          stmt.clear();
          return;
        }
        if (is_ident_char(last)) {
          int angle = 0;
          bool has_paren = false;
          for (const char c : h) {
            if (c == '<') ++angle;
            if (c == '>' && angle > 0) --angle;
            if (c == '(' && angle == 0) has_paren = true;
          }
          if (!has_paren) {
            frame.kind = ScopeFrame::kBlock;
            scopes.push_back(frame);
            stmt.clear();
            return;
          }
        }
      }
    }

    std::string qual;
    std::string name = declarator_name(head, &qual);
    // `try {` at function scope etc. fall through to plain blocks.
    if (name.empty() && trim(head).empty() == false &&
        trim(head).back() == ')') {
      name = "<anon-fn>";  // e.g. a ctor whose init list we mis-split
    }
    if (!name.empty()) {
      Function fn;
      fn.name = name;
      if (!qual.empty()) {
        fn.qual_class = qual;
      } else {
        const int ci = innermost_class();
        if (ci >= 0 && directly_in_class()) {
          fn.qual_class = fm.classes[static_cast<std::size_t>(ci)].name;
        }
      }
      fn.head_line = line;
      fn.begin_line = line;
      fn.hot = hot;
      fn.entry_locks = reqs;
      // Parameter types become resolvable locals.
      parse_params(head, fn);
      frame.kind = ScopeFrame::kFunction;
      frame.func_index = static_cast<int>(fm.functions.size());
      // Inline method bodies also register a MethodDecl so virtual-ness
      // and CDN_HOT markers merge uniformly across TUs.
      const int ci = innermost_class();
      if (ci >= 0 && directly_in_class()) {
        MethodDecl decl;
        decl.name = name;
        decl.line = line;
        decl.is_virtual = is_virtual;
        decl.hot = hot;
        decl.entry_locks = reqs;
        fm.classes[static_cast<std::size_t>(ci)].method_decls.push_back(
            std::move(decl));
      }
      fm.functions.push_back(std::move(fn));
      scopes.push_back(frame);
      stmt.clear();
      return;
    }

    frame.kind = ScopeFrame::kBlock;
    scopes.push_back(frame);
    stmt.clear();
  }

  static void parse_params(const std::string& head, Function& fn) {
    const std::size_t open = head.find('(');
    if (open == std::string::npos) return;
    int depth = 0;
    std::size_t close = std::string::npos;
    for (std::size_t i = open; i < head.size(); ++i) {
      if (head[i] == '(') ++depth;
      if (head[i] == ')' && --depth == 0) {
        close = i;
        break;
      }
    }
    if (close == std::string::npos) return;
    const std::string params = head.substr(open + 1, close - open - 1);
    std::vector<std::string> parts;
    int angle = 0;
    int paren = 0;
    std::string cur;
    for (const char c : params) {
      if (c == '<') ++angle;
      if (c == '>' && angle > 0) --angle;
      if (c == '(') ++paren;
      if (c == ')') --paren;
      if (c == ',' && angle == 0 && paren == 0) {
        parts.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!trim(cur).empty()) parts.push_back(cur);
    static const std::regex kParam(
        R"(^\s*(?:const\s+)?([A-Za-z_][\w:]*(?:<[^;]*>)?)\s*(?:const\s*)?[&*]*\s+([A-Za-z_]\w*)\s*(?:=[^,]*)?$)");
    for (const std::string& p : parts) {
      std::smatch m;
      const std::string t = trim(p);
      if (std::regex_match(t, m, kParam)) {
        fn.locals[m[2].str()] = strip_type(m[1].str());
      }
    }
  }

  void close_brace(int line) {
    if (scopes.empty()) return;
    const int fi = innermost_function();
    if (fi >= 0 && paren_depth == 0) flush_statement_into_function();
    ScopeFrame frame = std::move(scopes.back());
    scopes.pop_back();
    paren_depth = frame.saved_paren;
    stmt = std::move(frame.saved_stmt);  // empty unless expression brace
    // Locks scoped to the closed frame are released.
    while (!lock_stack.empty() && lock_stack.back().second > scopes.size()) {
      lock_stack.pop_back();
    }
    if (frame.kind == ScopeFrame::kClass && frame.class_index >= 0) {
      fm.classes[static_cast<std::size_t>(frame.class_index)].end_line = line;
    }
    if (frame.kind == ScopeFrame::kFunction && frame.func_index >= 0) {
      Function& fn = fm.functions[static_cast<std::size_t>(frame.func_index)];
      fn.end_line = line;
      if (fn.begin_line == fn.head_line) fn.begin_line = frame.open_line;
    }
  }

  void statement_end() {
    if (directly_in_class()) {
      parse_class_statement();
    } else {
      flush_statement_into_function();
    }
    stmt.clear();
  }

  void run() {
    bool in_pp = false;  // inside a preprocessor directive (+ continuations)
    for (std::size_t li = 0; li < fm.view.code.size(); ++li) {
      const std::string& code = fm.view.code[li];
      const int line = static_cast<int>(li) + 1;
      const std::string trimmed = trim(code);
      if (in_pp || (!trimmed.empty() && trimmed[0] == '#')) {
        in_pp = !code.empty() && code.back() == '\\';
        continue;
      }
      std::string seg;
      for (std::size_t i = 0; i < code.size(); ++i) {
        const char c = code[i];
        if (c == '(') ++paren_depth;
        if (c == ')') paren_depth = std::max(0, paren_depth - 1);
        if (c == '{' && true) {
          if (!trim(seg).empty()) stmt.emplace_back(line, seg);
          seg.clear();
          open_brace(line);
          continue;
        }
        if (c == '}') {
          if (!trim(seg).empty()) stmt.emplace_back(line, seg);
          seg.clear();
          close_brace(line);
          continue;
        }
        seg.push_back(c);
        if (c == ';' && paren_depth == 0) {
          stmt.emplace_back(line, seg);
          seg.clear();
          statement_end();
        }
      }
      if (!trim(seg).empty()) stmt.emplace_back(line, seg);
    }
    // Close dangling scopes at EOF so spans stay valid.
    while (!scopes.empty()) {
      close_brace(static_cast<int>(fm.view.code.size()));
    }
  }
};

std::vector<HotRegion> find_hot_regions(const std::vector<std::string>& raw) {
  std::vector<HotRegion> regions;
  int open = -1;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i].find("detlint:hot-begin") != std::string::npos) {
      if (open < 0) open = static_cast<int>(i) + 1;
    } else if (raw[i].find("detlint:hot-end") != std::string::npos) {
      if (open >= 0) {
        regions.push_back(HotRegion{open, static_cast<int>(i) + 1});
        open = -1;
      }
    }
  }
  if (open >= 0) {
    regions.push_back(HotRegion{open, static_cast<int>(raw.size())});
  }
  return regions;
}

}  // namespace

FileModel build_file_model(const std::string& rel_path,
                           const std::string& text) {
  FileModel fm;
  fm.path = rel_path;
  fm.view = build_code_view(text);
  fm.allowed = allowed_rules_per_line(fm.view.raw);
  fm.hot_regions = find_hot_regions(fm.view.raw);
  Parser parser{fm, {}, 0, {}, {}};
  parser.run();
  return fm;
}

// ---------------------------------------------------------------------------
// Project model
// ---------------------------------------------------------------------------

std::string strip_type(const std::string& type) {
  std::string s = collapse_ws(type);
  static const std::regex kQual(
      R"(\b(const|mutable|static|constexpr|volatile|inline|typename|struct|class)\b)");
  s = std::regex_replace(s, kQual, " ");
  // Strip the template argument list of the head type.
  const std::size_t lt = s.find('<');
  if (lt != std::string::npos) s = s.substr(0, lt);
  s = collapse_ws(s);
  while (!s.empty() && (s.back() == '&' || s.back() == '*' ||
                        s.back() == ' ')) {
    s.pop_back();
  }
  return trim(s);
}

bool is_container_type(const std::string& type) {
  static const std::set<std::string> kContainers = {
      "vector",        "deque",         "list",
      "forward_list",  "map",           "multimap",
      "set",           "multiset",      "unordered_map",
      "unordered_set", "unordered_multimap", "unordered_multiset",
      "FlatMap"};
  std::string head = strip_type(type);
  const std::size_t sep = head.rfind("::");
  if (sep != std::string::npos) head = head.substr(sep + 2);
  return kContainers.count(head) != 0;
}

void ProjectModel::add(FileModel fm) { files.push_back(std::move(fm)); }

void ProjectModel::finalize() {
  classes.clear();
  virtual_methods.clear();
  accounting_classes.clear();
  mutex_members.clear();
  aliases.clear();
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const FileModel& fm = files[fi];
    for (const auto& [name, target] : fm.aliases) {
      aliases.emplace(name, target);
    }
    for (std::size_t ci = 0; ci < fm.classes.size(); ++ci) {
      const Class& cls = fm.classes[ci];
      classes.emplace(cls.name, std::make_pair(fi, ci));
      for (const MethodDecl& d : cls.method_decls) {
        if (d.is_virtual) virtual_methods.insert(d.name);
        if (d.name == "metadata_bytes") accounting_classes.insert(cls.name);
      }
      for (const Member& m : cls.members) {
        std::string head = strip_type(m.type);
        const std::size_t sep = head.rfind("::");
        if (sep != std::string::npos) head = head.substr(sep + 2);
        if (head == "Mutex" || head == "mutex" || head == "shared_mutex" ||
            head == "recursive_mutex" || head == "timed_mutex") {
          mutex_members[m.name].insert(cls.qual);
        }
      }
    }
    for (const Function& fn : fm.functions) {
      if (fn.name == "metadata_bytes" && !fn.qual_class.empty()) {
        accounting_classes.insert(fn.qual_class);
      }
    }
  }
}

const Class* ProjectModel::find_class(const std::string& unqual) const {
  const auto range = classes.equal_range(unqual);
  if (range.first == range.second) return nullptr;
  const auto& [fi, ci] = range.first->second;
  return &files[fi].classes[ci];
}

std::string ProjectModel::resolve_class(const std::string& type) const {
  std::string cur = type;
  for (int hops = 0; hops < 8; ++hops) {
    std::string head = strip_type(cur);
    const std::size_t sep = head.rfind("::");
    const std::string last =
        sep == std::string::npos ? head : head.substr(sep + 2);
    if (last == "unique_ptr" || last == "shared_ptr") {
      // Recurse into the first template argument.
      const std::string collapsed = collapse_ws(cur);
      const std::size_t lt = collapsed.find('<');
      if (lt == std::string::npos) return "";
      int angle = 0;
      std::size_t end = collapsed.size();
      for (std::size_t i = lt; i < collapsed.size(); ++i) {
        if (collapsed[i] == '<') ++angle;
        if (collapsed[i] == '>') {
          if (--angle == 0) {
            end = i;
            break;
          }
        }
        if (collapsed[i] == ',' && angle == 1) {
          end = i;
          break;
        }
      }
      cur = collapsed.substr(lt + 1, end - lt - 1);
      continue;
    }
    const auto alias = aliases.find(last);
    if (alias != aliases.end() && alias->second != cur) {
      cur = alias->second;
      continue;
    }
    return find_class(last) != nullptr ? last : "";
  }
  return "";
}

}  // namespace cdn::detlint

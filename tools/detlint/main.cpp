// detlint CLI. Exit codes: 0 clean, 1 findings, 2 usage/IO error.
//
//   detlint --root <dir> [options] <subdir>...
//     --json FILE            write machine-readable findings (JSON array)
//     --sarif FILE           write a SARIF 2.1.0 report (code scanning)
//     --baseline FILE        ignore findings recorded in FILE (the ratchet)
//     --write-baseline FILE  snapshot current findings as a baseline, exit 0
//     --fix                  apply mechanical fixes (allow-suppressions,
//                            pragma-once inserts) for the findings, exit 0
//     --list-rules           print rule ids and exit
//     --quiet                suppress the per-finding text report
//
// Runs the two-phase project scan (v1 lexical rules + v2 cross-TU passes:
// lock-order, hot-path purity, accounting — see passes.hpp).
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "detlint.hpp"

namespace {

int usage(const char* msg) {
  if (msg != nullptr) std::cerr << "detlint: " << msg << "\n";
  std::cerr << "usage: detlint --root <dir> [--json FILE] [--sarif FILE]\n"
               "               [--baseline FILE] [--write-baseline FILE]\n"
               "               [--fix] [--list-rules] [--quiet] <subdir>...\n";
  return 2;
}

std::string read_file(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  *ok = static_cast<bool>(in);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string json_out;
  std::string sarif_out;
  std::string baseline_path;
  std::string write_baseline_path;
  bool fix = false;
  bool quiet = false;
  std::vector<std::string> subdirs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "detlint: " << flag << " needs an argument\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--root") {
      const char* v = next("--root");
      if (v == nullptr) return 2;
      root = v;
    } else if (arg == "--json") {
      const char* v = next("--json");
      if (v == nullptr) return 2;
      json_out = v;
    } else if (arg == "--sarif") {
      const char* v = next("--sarif");
      if (v == nullptr) return 2;
      sarif_out = v;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--baseline") {
      const char* v = next("--baseline");
      if (v == nullptr) return 2;
      baseline_path = v;
    } else if (arg == "--write-baseline") {
      const char* v = next("--write-baseline");
      if (v == nullptr) return 2;
      write_baseline_path = v;
    } else if (arg == "--list-rules") {
      for (const auto rule : cdn::detlint::all_rules()) {
        std::cout << cdn::detlint::rule_id(rule) << "  "
                  << cdn::detlint::rule_help(rule) << "\n";
      }
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(("unknown option " + arg).c_str());
    } else {
      subdirs.push_back(arg);
    }
  }
  if (root.empty()) return usage("--root is required");
  if (subdirs.empty()) return usage("no directories to scan");

  std::vector<cdn::detlint::Finding> findings;
  try {
    findings = cdn::detlint::scan_project(root, subdirs);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  std::sort(findings.begin(), findings.end(),
            [](const cdn::detlint::Finding& a,
               const cdn::detlint::Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return std::string(rule_id(a.rule)) < rule_id(b.rule);
            });

  if (!write_baseline_path.empty()) {
    if (!write_file(write_baseline_path, cdn::detlint::to_json(findings))) {
      std::cerr << "detlint: cannot write " << write_baseline_path << "\n";
      return 2;
    }
    std::cout << "detlint: wrote baseline with " << findings.size()
              << " finding(s) to " << write_baseline_path << "\n";
    return 0;
  }

  if (!baseline_path.empty()) {
    bool ok = false;
    const std::string baseline = read_file(baseline_path, &ok);
    if (!ok) {
      std::cerr << "detlint: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    std::string error;
    auto filtered = cdn::detlint::apply_baseline(std::move(findings),
                                                 baseline, &error);
    if (!filtered) {
      std::cerr << "detlint: bad baseline: " << error << "\n";
      return 2;
    }
    findings = std::move(*filtered);
  }

  if (!json_out.empty() &&
      !write_file(json_out, cdn::detlint::to_json(findings))) {
    std::cerr << "detlint: cannot write " << json_out << "\n";
    return 2;
  }
  if (!sarif_out.empty() &&
      !write_file(sarif_out, cdn::detlint::to_sarif(findings))) {
    std::cerr << "detlint: cannot write " << sarif_out << "\n";
    return 2;
  }

  if (fix) {
    std::vector<std::string> fixed;
    int edits = 0;
    try {
      edits = cdn::detlint::apply_fixes(root, findings, &fixed);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
    std::cout << "detlint: applied " << edits << " fix(es) across "
              << fixed.size() << " file(s)\n";
    for (const std::string& f : fixed) std::cout << "  fixed " << f << "\n";
    int skipped = 0;
    for (const auto& f : findings) {
      if (!cdn::detlint::rule_is_fixable(f.rule)) ++skipped;
    }
    if (skipped != 0) {
      std::cout << "detlint: " << skipped
                << " finding(s) need a real fix (not auto-fixable)\n";
    }
    return 0;
  }

  if (!quiet) {
    for (const auto& f : findings) {
      std::cout << f.file << ":" << f.line << ": ["
                << cdn::detlint::rule_id(f.rule) << "] " << f.message
                << "\n";
    }
  }
  if (!findings.empty()) {
    std::cout << "detlint: " << findings.size()
              << " unsuppressed finding(s)\n";
    return 1;
  }
  std::cout << "detlint: clean\n";
  return 0;
}

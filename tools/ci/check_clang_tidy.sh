#!/usr/bin/env bash
# Ratcheted clang-tidy gate: fails only on findings NOT recorded in the
# checked-in baseline (tools/ci/clang_tidy_baseline.txt), so a PR is judged
# on the findings it introduces, never on pre-existing ones. Findings are
# normalized to "<relative-file> <check-id>" so line-number drift from
# unrelated edits does not invalidate the baseline.
#
# usage: check_clang_tidy.sh BUILD_DIR [RUN_CLANG_TIDY_BIN]
#   BUILD_DIR must contain compile_commands.json
#   (cmake -DCMAKE_EXPORT_COMPILE_COMMANDS=ON).
set -euo pipefail

BUILD_DIR=${1:?usage: check_clang_tidy.sh BUILD_DIR [RUN_CLANG_TIDY_BIN]}
RUNNER=${2:-run-clang-tidy}
BASELINE=${BASELINE:-tools/ci/clang_tidy_baseline.txt}

[ -f "$BUILD_DIR/compile_commands.json" ] || {
  echo "check_clang_tidy: $BUILD_DIR/compile_commands.json missing" >&2
  exit 2
}

log=$(mktemp)
current=$(mktemp)
baseline_sorted=$(mktemp)
new=$(mktemp)
trap 'rm -f "$log" "$current" "$baseline_sorted" "$new"' EXIT

# The runner exits nonzero whenever any warning fires; the ratchet below is
# what decides pass/fail, so swallow its exit code (but not a missing
# binary, which the -version probe catches first).
"$RUNNER" -version >/dev/null
"$RUNNER" -quiet -p "$BUILD_DIR" 2>/dev/null >"$log" || true

sed -E "s|^$(pwd)/||" "$log" \
  | grep -E '^[^ ]+:[0-9]+:[0-9]+: warning: ' \
  | sed -E 's/^([^:]+):[0-9]+:[0-9]+: warning: .*\[([A-Za-z0-9.,-]+)\]$/\1 \2/' \
  | grep -v '/testdata/' \
  | sort -u >"$current" || true

# Baseline entries may carry trailing "# why" justifications; strip them
# and comment/blank lines before comparing.
sed -E 's/[[:space:]]*#.*$//' "$BASELINE" 2>/dev/null \
  | grep -vE '^[[:space:]]*$' | sort -u >"$baseline_sorted" || true
comm -13 "$baseline_sorted" "$current" >"$new"

if [ -s "$new" ]; then
  echo "clang-tidy: new findings not in $BASELINE:"
  cat "$new"
  echo
  echo "Fix them (preferred), or — for accepted pre-existing debt only —"
  echo "append the lines above to $BASELINE with a justification."
  exit 1
fi
echo "clang-tidy: no new findings" \
  "($(wc -l <"$current" | tr -d ' ') baselined/current)"
